//===- MpmcQueue.h - Bounded lock-free MPMC queue ---------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded multi-producer/multi-consumer queue (Dmitry Vyukov's
/// sequence-numbered ring) used to fan trace frames out to the parallel
/// ingest decode pool (ag/IngestHub.h).
///
/// Each cell carries a sequence counter that encodes whose turn it is:
/// a cell whose sequence equals the enqueue position is free to write, one
/// whose sequence equals the dequeue position + 1 is ready to read. A
/// producer or consumer claims its position with one CAS on the shared
/// cursor and then touches only its own cell, so producers never contend
/// with consumers on the same cache line and the queue is linearizable
/// without any lock.
///
/// tryPush/tryPop are non-blocking and fail on a full/empty queue; callers
/// that want to sleep compose the queue with their own condition variable
/// (the ingest hub does — a decode pool parks when no frames are in
/// flight). Capacity is rounded up to a power of two. The queue stores T
/// by value and requires it to be default-constructible and movable.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SUPPORT_MPMCQUEUE_H
#define ASYNCG_SUPPORT_MPMCQUEUE_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

namespace asyncg {

template <typename T> class MpmcQueue {
public:
  /// Creates a queue holding at most \p Capacity elements (rounded up to a
  /// power of two, minimum 2).
  explicit MpmcQueue(size_t Capacity) {
    size_t Cap = 2;
    while (Cap < Capacity)
      Cap <<= 1;
    Cells.reset(new Cell[Cap]);
    for (size_t I = 0; I != Cap; ++I)
      Cells[I].Seq.store(I, std::memory_order_relaxed);
    Mask = Cap - 1;
  }

  MpmcQueue(const MpmcQueue &) = delete;
  MpmcQueue &operator=(const MpmcQueue &) = delete;

  size_t capacity() const { return Mask + 1; }

  /// Enqueues \p Value. Returns false when the queue is full.
  bool tryPush(T Value) {
    size_t Pos = Tail.load(std::memory_order_relaxed);
    for (;;) {
      Cell &C = Cells[Pos & Mask];
      size_t Seq = C.Seq.load(std::memory_order_acquire);
      intptr_t Diff =
          static_cast<intptr_t>(Seq) - static_cast<intptr_t>(Pos);
      if (Diff == 0) {
        // The cell is free at this position; claim it.
        if (Tail.compare_exchange_weak(Pos, Pos + 1,
                                       std::memory_order_relaxed))
          break;
      } else if (Diff < 0) {
        return false; // full: the cell still holds an unconsumed element
      } else {
        Pos = Tail.load(std::memory_order_relaxed); // lost the race
      }
    }
    Cell &C = Cells[Pos & Mask];
    C.Value = std::move(Value);
    C.Seq.store(Pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeues into \p Out. Returns false when the queue is empty.
  bool tryPop(T &Out) {
    size_t Pos = Head.load(std::memory_order_relaxed);
    for (;;) {
      Cell &C = Cells[Pos & Mask];
      size_t Seq = C.Seq.load(std::memory_order_acquire);
      intptr_t Diff =
          static_cast<intptr_t>(Seq) - static_cast<intptr_t>(Pos + 1);
      if (Diff == 0) {
        // The cell holds an element for this position; claim it.
        if (Head.compare_exchange_weak(Pos, Pos + 1,
                                       std::memory_order_relaxed))
          break;
      } else if (Diff < 0) {
        return false; // empty: no producer has filled this position yet
      } else {
        Pos = Head.load(std::memory_order_relaxed); // lost the race
      }
    }
    Cell &C = Cells[Pos & Mask];
    Out = std::move(C.Value);
    C.Seq.store(Pos + Mask + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact only when quiescent; racy otherwise —
  /// fine for "is there anything in flight" heuristics).
  size_t sizeApprox() const {
    size_t T0 = Tail.load(std::memory_order_relaxed);
    size_t H = Head.load(std::memory_order_relaxed);
    return T0 >= H ? T0 - H : 0;
  }

private:
  struct Cell {
    std::atomic<size_t> Seq{0};
    T Value{};
  };

  static constexpr size_t CacheLine = 64;

  /// Raw array, not a vector: cells hold atomics and are neither copyable
  /// nor movable.
  std::unique_ptr<Cell[]> Cells;
  size_t Mask = 0;
  /// Producers and consumers advance independent cursors; keep them on
  /// separate cache lines so a busy producer does not stall consumers.
  alignas(CacheLine) std::atomic<size_t> Tail{0};
  alignas(CacheLine) std::atomic<size_t> Head{0};
};

} // namespace asyncg

#endif // ASYNCG_SUPPORT_MPMCQUEUE_H
