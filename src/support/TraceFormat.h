//===- TraceFormat.h - Compact binary trace records -------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary on-the-wire format of the asynchronous instrumentation
/// pipeline: every hook event is encoded into one or more fixed-size
/// 32-byte TraceRecords. The same records travel through the in-process
/// SPSC ring (support/SpscRing.h) and, unchanged, into `.agtrace` files
/// for offline replay (instr/TraceCodec.h builds events back from them).
///
/// Record layout (32 bytes, little-endian fields, trivially copyable):
///
///   | field | size | purpose                                         |
///   |-------|------|-------------------------------------------------|
///   | Op    | 1    | TraceOp opcode                                  |
///   | A8    | 1    | small scalar / flags (per opcode)               |
///   | B16   | 2    | flags / counts (per opcode)                     |
///   | C32   | 4    | Symbol id / 32-bit scalar (per opcode)          |
///   | D64   | 8    | id / payload                                    |
///   | E64   | 8    | id / payload                                    |
///   | F64   | 8    | id / payload (packLoc: low32 file, high32 line) |
///
/// Multi-record events keep a fixed order so the decoder is a simple state
/// machine: [FuncDef]* [EnterTrigger]? Enter — and ApiBase ApiExt
/// [ApiFuncs]* [ApiInputs]*, with counts carried in ApiExt.
///
/// `.agtrace` file layout: a 32-byte TraceFileHeader (magic + version,
/// validated on open), RecordCount raw records, then a symbol-table
/// section (count + length-prefixed strings) so Symbol ids survive across
/// processes; the reader re-interns them and hands the decoder an
/// old-id -> new-id remap.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SUPPORT_TRACEFORMAT_H
#define ASYNCG_SUPPORT_TRACEFORMAT_H

#include "support/SymbolTable.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

namespace asyncg {
namespace trace {

/// Opcode of one trace record.
enum class TraceOp : uint8_t {
  /// Defines a function the first time it appears: A8 = IsBuiltin,
  /// C32 = name Symbol, D64 = FunctionId, F64 = packed definition loc.
  FuncDef = 1,
  /// Trigger context for the next Enter: A8 = TriggerInfo::Kind,
  /// B16 bit0 = IsReject, C32 = event Symbol, D64 = TriggerId,
  /// E64 = ObjectId.
  EnterTrigger = 2,
  /// Function enter: A8 = PhaseKind, B16 bit0 = TopLevel, C32 = ApiKind,
  /// D64 = FunctionId, E64 = ScheduleId, F64 = TickSeq.
  Enter = 3,
  /// Function exit: D64 = FunctionId.
  Exit = 4,
  /// API call, part 1: A8 = ApiKind, B16 bits0-3 = Once/HasRejectHandler/
  /// TriggerHadEffect/Internal, bits8-11 = TargetPhase, C32 = event
  /// Symbol, D64 = ScheduleId, E64 = BoundObj, F64 = TriggerId.
  ApiBase = 5,
  /// API call, part 2 (always follows ApiBase): A8 = callback count,
  /// B16 = input-promise count, C32 = loc line, D64 = TimeoutMs bits,
  /// E64 = DerivedObj, F64 low32 = loc file Symbol.
  ApiExt = 6,
  /// Callback FunctionIds of the preceding ApiBase/ApiExt: A8 = how many
  /// of D64/E64/F64 are valid (1..3).
  ApiFuncs = 7,
  /// Input-promise ObjectIds (combinators), same packing as ApiFuncs.
  ApiInputs = 8,
  /// Object creation: A8 bit0 = IsPromise, bit1 = Internal,
  /// B16 = Relation ApiKind, C32 = name Symbol, D64 = ObjectId,
  /// E64 = parent ObjectId, F64 = packed loc.
  ObjCreate = 9,
  /// Reaction result: A8 bit0 = ReturnedUndefined, bit1 = Threw,
  /// D64 = source ObjectId, E64 = derived ObjectId, F64 = ScheduleId.
  ReactionResult = 10,
  /// Promise link (adoption): D64 = returned ObjectId, E64 = derived.
  PromiseLink = 11,
  /// Loop end: A8 bit0 = TickBudgetExhausted, D64 = tick count.
  LoopEnd = 12,
  /// Tracked object released (v2): A8 bit0 = IsPromise, D64 = ObjectId.
  ObjectRelease = 13,
  /// Cluster shard of the recording loop (v3): C32 = shard id. Emitted as
  /// the first record of a stream, and only when the shard is non-zero, so
  /// single-loop traces stay byte-identical to v2.
  ShardInfo = 14,
};

/// One fixed-size pipeline record. See the file comment for the per-opcode
/// field assignments.
struct TraceRecord {
  uint8_t Op = 0;
  uint8_t A8 = 0;
  uint16_t B16 = 0;
  uint32_t C32 = 0;
  uint64_t D64 = 0;
  uint64_t E64 = 0;
  uint64_t F64 = 0;
};

static_assert(sizeof(TraceRecord) == 32, "records must stay 32 bytes");
static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "records must be memcpy-safe for the ring and the file");

/// Packs a (file Symbol, line) source location into one u64.
inline uint64_t packLoc(SymbolId File, uint32_t Line) {
  return static_cast<uint64_t>(File) | (static_cast<uint64_t>(Line) << 32);
}
inline SymbolId packedLocFile(uint64_t P) {
  return static_cast<SymbolId>(P & 0xffffffffu);
}
inline uint32_t packedLocLine(uint64_t P) {
  return static_cast<uint32_t>(P >> 32);
}

//===----------------------------------------------------------------------===//
// .agtrace files
//===----------------------------------------------------------------------===//

constexpr char TraceMagic[8] = {'A', 'G', 'T', 'R', 'A', 'C', 'E', '\0'};
/// v2 added the ObjectRelease opcode; v3 added the ShardInfo opcode for
/// cluster-mode shard streams. Older traces (which simply lack the newer
/// opcodes) still replay — the reader accepts every version since v1.
constexpr uint32_t TraceVersion = 3;
constexpr uint32_t TraceMinVersion = 1;

/// On-disk header; 32 bytes like a record.
struct TraceFileHeader {
  char Magic[8];
  uint32_t Version;
  uint32_t Flags;
  uint64_t RecordCount;
  /// Absolute file offset of the symbol-table section.
  uint64_t SymtabOffset;
};

static_assert(sizeof(TraceFileHeader) == 32, "header must stay 32 bytes");

/// Streams records into an `.agtrace` file. finalize() appends the symbol
/// table (everything interned so far, so every id any record references is
/// covered) and patches the header.
class TraceFileWriter {
public:
  TraceFileWriter() = default;
  ~TraceFileWriter();

  TraceFileWriter(const TraceFileWriter &) = delete;
  TraceFileWriter &operator=(const TraceFileWriter &) = delete;

  /// Opens \p Path and writes a placeholder header. Returns false on I/O
  /// failure.
  bool open(const std::string &Path);

  bool isOpen() const { return File != nullptr; }

  /// Appends \p N records. Returns false on I/O failure.
  bool append(const TraceRecord *Records, size_t N);

  /// Writes the symbol section, patches the header, and closes the file.
  /// Returns false on I/O failure (the file is closed either way).
  bool finalize();

  uint64_t recordCount() const { return Count; }

private:
  std::FILE *File = nullptr;
  uint64_t Count = 0;
};

/// Reads an `.agtrace` file: validates magic/version, loads the symbol
/// section, and streams records back.
class TraceFileReader {
public:
  TraceFileReader() = default;
  ~TraceFileReader();

  TraceFileReader(const TraceFileReader &) = delete;
  TraceFileReader &operator=(const TraceFileReader &) = delete;

  /// Opens and validates \p Path; loads the symbol section and interns
  /// every symbol into the current process's table. On failure returns
  /// false and, when \p Err is non-null, describes the problem.
  bool open(const std::string &Path, std::string *Err = nullptr);

  /// Reads up to \p Max records; returns the count (0 at end of trace).
  size_t read(TraceRecord *Out, size_t Max);

  uint64_t recordCount() const { return Header.RecordCount; }

  /// Maps a symbol id as written by the recording process to the id of the
  /// same string in this process's table.
  const std::vector<SymbolId> &symbolRemap() const { return Remap; }

private:
  std::FILE *File = nullptr;
  TraceFileHeader Header = {};
  uint64_t ReadSoFar = 0;
  std::vector<SymbolId> Remap;
};

} // namespace trace
} // namespace asyncg

#endif // ASYNCG_SUPPORT_TRACEFORMAT_H
