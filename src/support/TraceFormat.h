//===- TraceFormat.h - Compact binary trace records -------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary on-the-wire format of the asynchronous instrumentation
/// pipeline: every hook event is encoded into one or more fixed-size
/// 32-byte TraceRecords. The same records travel through the in-process
/// SPSC ring (support/SpscRing.h) and into `.agtrace` files for offline
/// replay (instr/TraceCodec.h builds events back from them).
///
/// Record layout (32 bytes, little-endian fields, trivially copyable):
///
///   | field | size | purpose                                         |
///   |-------|------|-------------------------------------------------|
///   | Op    | 1    | TraceOp opcode                                  |
///   | A8    | 1    | small scalar / flags (per opcode)               |
///   | B16   | 2    | flags / counts (per opcode)                     |
///   | C32   | 4    | Symbol id / 32-bit scalar (per opcode)          |
///   | D64   | 8    | id / payload                                    |
///   | E64   | 8    | id / payload                                    |
///   | F64   | 8    | id / payload (packLoc: low32 file, high32 line) |
///
/// Multi-record events keep a fixed order so the decoder is a simple state
/// machine: [FuncDef]* [EnterTrigger]? Enter — and ApiBase ApiExt
/// [ApiFuncs]* [ApiInputs]*, with counts carried in ApiExt.
///
/// `.agtrace` file layout, common to all versions: a 32-byte
/// TraceFileHeader (magic + version, validated on open), a record section,
/// then a symbol-table section (count + length-prefixed strings) so Symbol
/// ids survive across processes; the reader re-interns them and hands the
/// decoder an old-id -> new-id remap.
///
/// Record section, v1..v3: RecordCount raw 32-byte records.
///
/// Record section, v4 (columnar delta compression): a sequence of
/// batch frames. Each frame is self-contained — per-opcode prediction
/// state resets at the frame boundary — so frames decode independently
/// and a truncated tail loses at most one frame. Frame layout:
///
///   TraceFrameHeader { magic, record count, 8 column byte sizes }
///   column 0: Op    — one raw byte per record
///   column 1: Mask  — one raw byte per record; bit i set means field i
///                     differs from the previous record *of the same
///                     opcode* in this frame and a varint follows in
///                     field i's column; clear means "same as before"
///                     and costs zero bytes
///   columns 2..7: A8, B16, C32, D64, E64, F64 — zigzag(delta) LEB128
///                     varints, delta against the previous same-opcode
///                     record's field (zero at frame start)
///
/// Ticks, ids, and tick-seqs are near-monotonic and call-site locations,
/// ApiKinds, and flags repeat heavily per opcode, so most fields are
/// "unchanged" (0 bytes) or one-byte deltas; typical frames are 4-6x
/// smaller than the raw 32-byte rows.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SUPPORT_TRACEFORMAT_H
#define ASYNCG_SUPPORT_TRACEFORMAT_H

#include "support/SymbolTable.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

namespace asyncg {
namespace trace {

/// Opcode of one trace record.
enum class TraceOp : uint8_t {
  /// Defines a function the first time it appears: A8 = IsBuiltin,
  /// C32 = name Symbol, D64 = FunctionId, F64 = packed definition loc.
  FuncDef = 1,
  /// Trigger context for the next Enter: A8 = TriggerInfo::Kind,
  /// B16 bit0 = IsReject, C32 = event Symbol, D64 = TriggerId,
  /// E64 = ObjectId.
  EnterTrigger = 2,
  /// Function enter: A8 = PhaseKind, B16 bit0 = TopLevel, C32 = ApiKind,
  /// D64 = FunctionId, E64 = ScheduleId, F64 = TickSeq.
  Enter = 3,
  /// Function exit: D64 = FunctionId.
  Exit = 4,
  /// API call, part 1: A8 = ApiKind, B16 bits0-3 = Once/HasRejectHandler/
  /// TriggerHadEffect/Internal, bits8-11 = TargetPhase, C32 = event
  /// Symbol, D64 = ScheduleId, E64 = BoundObj, F64 = TriggerId.
  ApiBase = 5,
  /// API call, part 2 (always follows ApiBase): A8 = callback count,
  /// B16 = input-promise count, C32 = loc line, D64 = TimeoutMs bits,
  /// E64 = DerivedObj, F64 low32 = loc file Symbol.
  ApiExt = 6,
  /// Callback FunctionIds of the preceding ApiBase/ApiExt: A8 = how many
  /// of D64/E64/F64 are valid (1..3).
  ApiFuncs = 7,
  /// Input-promise ObjectIds (combinators), same packing as ApiFuncs.
  ApiInputs = 8,
  /// Object creation: A8 bit0 = IsPromise, bit1 = Internal,
  /// B16 = Relation ApiKind, C32 = name Symbol, D64 = ObjectId,
  /// E64 = parent ObjectId, F64 = packed loc.
  ObjCreate = 9,
  /// Reaction result: A8 bit0 = ReturnedUndefined, bit1 = Threw,
  /// D64 = source ObjectId, E64 = derived ObjectId, F64 = ScheduleId.
  ReactionResult = 10,
  /// Promise link (adoption): D64 = returned ObjectId, E64 = derived.
  PromiseLink = 11,
  /// Loop end: A8 bit0 = TickBudgetExhausted, D64 = tick count.
  LoopEnd = 12,
  /// Tracked object released (v2): A8 bit0 = IsPromise, D64 = ObjectId.
  ObjectRelease = 13,
  /// Cluster shard of the recording loop (v3): C32 = shard id. Emitted as
  /// the first record of a stream, and only when the shard is non-zero, so
  /// single-loop traces stay byte-identical to v2.
  ShardInfo = 14,
};

/// One past the largest opcode (sizes prediction tables).
constexpr unsigned TraceOpLimit = 15;

/// One fixed-size pipeline record. See the file comment for the per-opcode
/// field assignments.
struct TraceRecord {
  uint8_t Op = 0;
  uint8_t A8 = 0;
  uint16_t B16 = 0;
  uint32_t C32 = 0;
  uint64_t D64 = 0;
  uint64_t E64 = 0;
  uint64_t F64 = 0;
};

static_assert(sizeof(TraceRecord) == 32, "records must stay 32 bytes");
static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "records must be memcpy-safe for the ring and the file");

/// Packs a (file Symbol, line) source location into one u64.
inline uint64_t packLoc(SymbolId File, uint32_t Line) {
  return static_cast<uint64_t>(File) | (static_cast<uint64_t>(Line) << 32);
}
inline SymbolId packedLocFile(uint64_t P) {
  return static_cast<SymbolId>(P & 0xffffffffu);
}
inline uint32_t packedLocLine(uint64_t P) {
  return static_cast<uint32_t>(P >> 32);
}

//===----------------------------------------------------------------------===//
// Varint / zigzag primitives (v4 columns)
//===----------------------------------------------------------------------===//

/// Zigzag-maps a signed delta into an unsigned value with small magnitude
/// for small |delta|.
inline uint64_t zigzagEncode(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}
inline int64_t zigzagDecode(uint64_t U) {
  return static_cast<int64_t>(U >> 1) ^ -static_cast<int64_t>(U & 1);
}

/// Appends \p V as an LEB128 varint (1..10 bytes).
inline void appendVarint(std::vector<uint8_t> &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  Out.push_back(static_cast<uint8_t>(V));
}

/// Reads an LEB128 varint from [P, End). Returns false on truncation or a
/// varint longer than 10 bytes; advances \p P past the value on success.
/// Largest encoded size of one varint (10 x 7 bits covers 64). Decoders
/// may use the unchecked reader while every column cursor is at least this
/// far from its end.
constexpr unsigned MaxVarintBytes = 10;

/// Bounds-unchecked LEB128 read: the caller guarantees at least
/// MaxVarintBytes readable at \p P. Hot path of the v4 frame decoder.
inline uint64_t readVarintUnchecked(const uint8_t *&P) {
  uint64_t B = *P++;
  if (B < 0x80)
    return B;
  uint64_t Acc = B & 0x7f;
  unsigned Shift = 7;
  do {
    B = *P++;
    Acc |= (B & 0x7f) << Shift;
    Shift += 7;
  } while ((B & 0x80) && Shift < 70);
  return Acc;
}

inline bool readVarint(const uint8_t *&P, const uint8_t *End, uint64_t &V) {
  // Fast path: single-byte varints dominate delta-compressed columns.
  if (P != End && *P < 0x80) {
    V = *P++;
    return true;
  }
  uint64_t Acc = 0;
  unsigned Shift = 0;
  while (P != End && Shift < 70) {
    uint8_t B = *P++;
    Acc |= static_cast<uint64_t>(B & 0x7f) << Shift;
    if (!(B & 0x80)) {
      V = Acc;
      return true;
    }
    Shift += 7;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// .agtrace files
//===----------------------------------------------------------------------===//

constexpr char TraceMagic[8] = {'A', 'G', 'T', 'R', 'A', 'C', 'E', '\0'};
/// v2 added the ObjectRelease opcode; v3 added the ShardInfo opcode for
/// cluster-mode shard streams; v4 switched the record section to columnar
/// delta-compressed batch frames (same records, same symbol section).
/// Older traces still replay — the reader accepts every version since v1.
constexpr uint32_t TraceVersion = 4;
constexpr uint32_t TraceMinVersion = 1;
/// Last version whose record section is raw 32-byte rows.
constexpr uint32_t TraceLastRawVersion = 3;

/// On-disk header; 32 bytes like a record.
struct TraceFileHeader {
  char Magic[8];
  uint32_t Version;
  uint32_t Flags;
  uint64_t RecordCount;
  /// Absolute file offset of the symbol-table section.
  uint64_t SymtabOffset;
};

static_assert(sizeof(TraceFileHeader) == 32, "header must stay 32 bytes");

/// Number of per-record byte streams in a v4 frame: Op, Mask, A8, B16,
/// C32, D64, E64, F64.
constexpr unsigned FrameColumns = 8;
/// Default records per frame (one encode/write unit).
constexpr uint32_t FrameRecords = 4096;
/// Upper bound accepted from a frame header (corruption guard).
constexpr uint32_t FrameMaxRecords = 1 << 20;
constexpr uint32_t FrameMagic = 0x46344741;    // "AG4F"
constexpr uint32_t FrameSymMagic = 0x53344741; // "AG4S"

/// v4 frame header, followed by the 8 column byte streams back to back.
struct TraceFrameHeader {
  uint32_t Magic;
  uint32_t RecordCount;
  uint32_t ColBytes[FrameColumns];
};

static_assert(sizeof(TraceFrameHeader) == 40, "frame header layout");

/// Symbol-checkpoint frame (v4): interleaved with record frames so a trace
/// cut off mid-recording still carries every symbol its surviving records
/// reference. Each checkpoint covers the contiguous id range
/// [FirstId, FirstId + SymCount) — the symbols interned since the previous
/// checkpoint — as length-prefixed strings (u32 length + bytes), ByteLen
/// payload bytes in total. A checkpoint is written immediately before any
/// record frame that references new symbols, and the file is flushed after
/// every frame, so the on-disk prefix is always decodable up to the last
/// complete frame. finalize() still appends the full symbol table; readers
/// of finalized files simply skip checkpoint frames.
struct TraceSymFrameHeader {
  uint32_t Magic; ///< FrameSymMagic
  uint32_t SymCount;
  uint64_t FirstId;
  uint64_t ByteLen;
  uint64_t Reserved[2];
};

static_assert(sizeof(TraceSymFrameHeader) == sizeof(TraceFrameHeader),
              "every v4 frame kind shares one header size so readers can "
              "read a header blindly and dispatch on the magic");

/// If [P, P+Avail) starts with a complete symbol-checkpoint frame, sets
/// \p Consumed to its total byte size and returns true; otherwise returns
/// false (not a checkpoint, or one cut off by truncation).
inline bool skipSymFrame(const uint8_t *P, size_t Avail, size_t &Consumed) {
  if (Avail < sizeof(TraceSymFrameHeader))
    return false;
  TraceSymFrameHeader H;
  std::memcpy(&H, P, sizeof(H));
  if (H.Magic != FrameSymMagic)
    return false;
  if (H.ByteLen > Avail - sizeof(H))
    return false;
  Consumed = sizeof(H) + static_cast<size_t>(H.ByteLen);
  return true;
}

/// Mask bits (column presence flags) in frame column 1.
enum : uint8_t {
  MaskA8 = 1 << 0,
  MaskB16 = 1 << 1,
  MaskC32 = 1 << 2,
  MaskD64 = 1 << 3,
  MaskE64 = 1 << 4,
  MaskF64 = 1 << 5,
};

/// Encodes spans of records into self-contained v4 frames.
class V4FrameEncoder {
public:
  /// Appends one frame holding \p N records to \p Out.
  void encodeFrame(const TraceRecord *Records, size_t N,
                   std::vector<uint8_t> &Out);

private:
  /// Per-opcode prediction state and per-column scratch, reused across
  /// frames (cleared per frame) so steady-state encoding is allocation
  /// free.
  TraceRecord Prev[TraceOpLimit];
  std::vector<uint8_t> Col[FrameColumns];
};

/// Decodes one self-contained v4 frame from [P, P+Avail). On success sets
/// \p Consumed to the frame's total byte size and invokes
/// \p EmitRecord(const TraceRecord &) once per record in encode order.
/// On failure returns false and, when \p Err is non-null, explains why;
/// \p EmitRecord may have been invoked for a prefix of the records.
template <typename Fn>
bool decodeV4Frame(const uint8_t *P, size_t Avail, size_t &Consumed,
                   Fn &&EmitRecord, std::string *Err) {
  auto Fail = [&](const char *M) {
    if (Err)
      *Err = M;
    return false;
  };
  if (Avail < sizeof(TraceFrameHeader))
    return Fail("trace file truncated: frame header");
  TraceFrameHeader H;
  std::memcpy(&H, P, sizeof(H));
  if (H.Magic != FrameMagic)
    return Fail("corrupt trace: bad frame magic");
  if (H.RecordCount == 0 || H.RecordCount > FrameMaxRecords)
    return Fail("corrupt trace: implausible frame record count");
  uint64_t Payload = 0;
  for (unsigned C = 0; C != FrameColumns; ++C)
    Payload += H.ColBytes[C];
  if (Payload > Avail - sizeof(TraceFrameHeader))
    return Fail("trace file truncated: frame payload");
  // Op and Mask are raw one-byte-per-record streams.
  if (H.ColBytes[0] != H.RecordCount || H.ColBytes[1] != H.RecordCount)
    return Fail("corrupt trace: frame op/mask column size");

  const uint8_t *ColP[FrameColumns];
  const uint8_t *ColEnd[FrameColumns];
  const uint8_t *Cursor = P + sizeof(TraceFrameHeader);
  for (unsigned C = 0; C != FrameColumns; ++C) {
    ColP[C] = Cursor;
    Cursor += H.ColBytes[C];
    ColEnd[C] = Cursor;
  }

  // Hot row-major decode with the column cursors in locals (a uint8_t
  // store may alias a pointer array, so keeping cursors out of arrays lets
  // them live in registers). Bounds checks are hoisted out of the record
  // loop: one record consumes at most MaxVarintBytes per column, so
  // min over columns of remaining/MaxVarintBytes records are provably safe
  // to decode with the unchecked varint reader and zero per-record
  // compares. The run length is recomputed when a run ends; the fully
  // bounds-checked reader only runs for the frame's last few records and
  // for corrupt inputs.
  TraceRecord Prev[TraceOpLimit] = {};
  const uint8_t *OpP = ColP[0];
  const uint8_t *MaskP = ColP[1];
  const uint8_t *PA = ColP[2], *EA = ColEnd[2];
  const uint8_t *PB = ColP[3], *EB = ColEnd[3];
  const uint8_t *PC = ColP[4], *EC = ColEnd[4];
  const uint8_t *PD = ColP[5], *ED = ColEnd[5];
  const uint8_t *PE = ColP[6], *EE = ColEnd[6];
  const uint8_t *PF = ColP[7], *EF = ColEnd[7];
  uint32_t I = 0;
  while (I != H.RecordCount) {
    size_t Safe = static_cast<size_t>(EA - PA);
    auto MinRemaining = [&Safe](size_t V) {
      if (V < Safe)
        Safe = V;
    };
    MinRemaining(static_cast<size_t>(EB - PB));
    MinRemaining(static_cast<size_t>(EC - PC));
    MinRemaining(static_cast<size_t>(ED - PD));
    MinRemaining(static_cast<size_t>(EE - PE));
    MinRemaining(static_cast<size_t>(EF - PF));
    size_t SafeRun = Safe / MaxVarintBytes;
    uint32_t Left = H.RecordCount - I;
    uint32_t RunEnd =
        I + static_cast<uint32_t>(SafeRun < Left ? SafeRun : Left);
    for (; I != RunEnd; ++I) {
      uint8_t Op = OpP[I];
      uint8_t Mask = MaskP[I];
      // Unknown opcodes still parse structurally (their columns decode
      // like any other); the event decoder counts them as bad records.
      TraceRecord &R = Prev[Op < TraceOpLimit ? Op : 0];
      R.Op = Op;
      if (Mask & MaskA8)
        R.A8 = static_cast<uint8_t>(
            static_cast<uint64_t>(R.A8) +
            static_cast<uint64_t>(zigzagDecode(readVarintUnchecked(PA))));
      if (Mask & MaskB16)
        R.B16 = static_cast<uint16_t>(
            static_cast<uint64_t>(R.B16) +
            static_cast<uint64_t>(zigzagDecode(readVarintUnchecked(PB))));
      if (Mask & MaskC32)
        R.C32 = static_cast<uint32_t>(
            static_cast<uint64_t>(R.C32) +
            static_cast<uint64_t>(zigzagDecode(readVarintUnchecked(PC))));
      if (Mask & MaskD64)
        R.D64 += static_cast<uint64_t>(zigzagDecode(readVarintUnchecked(PD)));
      if (Mask & MaskE64)
        R.E64 += static_cast<uint64_t>(zigzagDecode(readVarintUnchecked(PE)));
      if (Mask & MaskF64)
        R.F64 += static_cast<uint64_t>(zigzagDecode(readVarintUnchecked(PF)));
      EmitRecord(static_cast<const TraceRecord &>(R));
    }
    if (I == H.RecordCount)
      break;
    if (SafeRun == 0) {
      // Some column is within one max-length varint of its end: decode one
      // record fully bounds-checked, then re-derive the next safe run.
      uint8_t Op = OpP[I];
      uint8_t Mask = MaskP[I];
      TraceRecord &R = Prev[Op < TraceOpLimit ? Op : 0];
      R.Op = Op;
      uint64_t U;
      if (Mask & MaskA8) {
        if (!readVarint(PA, EA, U))
          return Fail("corrupt trace: A8 column overrun");
        R.A8 = static_cast<uint8_t>(static_cast<uint64_t>(R.A8) +
                                    static_cast<uint64_t>(zigzagDecode(U)));
      }
      if (Mask & MaskB16) {
        if (!readVarint(PB, EB, U))
          return Fail("corrupt trace: B16 column overrun");
        R.B16 = static_cast<uint16_t>(static_cast<uint64_t>(R.B16) +
                                      static_cast<uint64_t>(zigzagDecode(U)));
      }
      if (Mask & MaskC32) {
        if (!readVarint(PC, EC, U))
          return Fail("corrupt trace: C32 column overrun");
        R.C32 = static_cast<uint32_t>(static_cast<uint64_t>(R.C32) +
                                      static_cast<uint64_t>(zigzagDecode(U)));
      }
      if (Mask & MaskD64) {
        if (!readVarint(PD, ED, U))
          return Fail("corrupt trace: D64 column overrun");
        R.D64 += static_cast<uint64_t>(zigzagDecode(U));
      }
      if (Mask & MaskE64) {
        if (!readVarint(PE, EE, U))
          return Fail("corrupt trace: E64 column overrun");
        R.E64 += static_cast<uint64_t>(zigzagDecode(U));
      }
      if (Mask & MaskF64) {
        if (!readVarint(PF, EF, U))
          return Fail("corrupt trace: F64 column overrun");
        R.F64 += static_cast<uint64_t>(zigzagDecode(U));
      }
      EmitRecord(static_cast<const TraceRecord &>(R));
      ++I;
    }
  }
  Consumed = sizeof(TraceFrameHeader) + static_cast<size_t>(Payload);
  return true;
}

/// Streams records into an `.agtrace` file. finalize() appends the symbol
/// table (everything interned so far, so every id any record references is
/// covered) and patches the header. v4 batches records into columnar
/// frames; v1..v3 write raw rows.
class TraceFileWriter {
public:
  TraceFileWriter() = default;
  ~TraceFileWriter();

  TraceFileWriter(const TraceFileWriter &) = delete;
  TraceFileWriter &operator=(const TraceFileWriter &) = delete;

  /// Opens \p Path and writes a placeholder header. \p Version selects the
  /// record-section encoding (TraceMinVersion..TraceVersion). Returns
  /// false on I/O failure or an unsupported version.
  bool open(const std::string &Path, uint32_t Version = TraceVersion);

  bool isOpen() const { return File != nullptr; }
  uint32_t version() const { return Version; }

  /// Appends \p N records. Returns false on I/O failure.
  bool append(const TraceRecord *Records, size_t N);

  /// Writes the symbol section, patches the header, and closes the file.
  /// Returns false on I/O failure (the file is closed either way).
  bool finalize();

  uint64_t recordCount() const { return Count; }

  /// Bytes of the record section written so far (excludes header, symbol
  /// section, and any still-buffered v4 records).
  uint64_t recordBytes() const { return RecordSectionBytes; }

  /// v4 crash tolerance (on by default): interleave symbol-checkpoint
  /// frames and flush after every frame so a torn file keeps a decodable
  /// frame-aligned prefix. Off restores buffer-at-will writing (tests).
  void setCheckpoints(bool On) { Checkpoints = On; }

private:
  bool flushFrame();
  bool writeSymCheckpoint();

  std::FILE *File = nullptr;
  uint64_t Count = 0;
  uint64_t RecordSectionBytes = 0;
  uint32_t Version = TraceVersion;
  /// High-water mark of symbol ids already covered by a checkpoint.
  uint64_t CkptSyms = 0;
  bool Checkpoints = true;

  /// v4 batching state.
  std::vector<TraceRecord> Pending;
  std::vector<uint8_t> FrameBuf;
  V4FrameEncoder Encoder;
};

/// Reads an `.agtrace` file through stdio: validates magic/version, loads
/// the symbol section, and streams records back. Understands both the raw
/// (v1..v3) and the columnar (v4) record sections.
class TraceFileReader {
public:
  TraceFileReader() = default;
  ~TraceFileReader();

  TraceFileReader(const TraceFileReader &) = delete;
  TraceFileReader &operator=(const TraceFileReader &) = delete;

  /// Opens and validates \p Path; loads the symbol section and interns
  /// every symbol into the current process's table. On failure returns
  /// false and, when \p Err is non-null, describes the problem.
  bool open(const std::string &Path, std::string *Err = nullptr);

  /// Reads up to \p Max records; returns the count (0 at end of trace or
  /// on a corrupt v4 frame — check error() to tell the two apart).
  size_t read(TraceRecord *Out, size_t Max);

  uint64_t recordCount() const { return Header.RecordCount; }
  uint32_t version() const { return Header.Version; }

  /// Non-empty once a corrupt record section stopped read() early.
  const std::string &error() const { return ReadError; }

  /// Maps a symbol id as written by the recording process to the id of the
  /// same string in this process's table.
  const std::vector<SymbolId> &symbolRemap() const { return Remap; }

private:
  bool loadNextFrame();

  std::FILE *File = nullptr;
  TraceFileHeader Header = {};
  uint64_t ReadSoFar = 0;
  uint64_t FileSize = 0;
  std::vector<SymbolId> Remap;
  std::string ReadError;

  /// v4 state: decoded records of the current frame + raw frame scratch.
  std::vector<TraceRecord> Decoded;
  size_t DecodedPos = 0;
  std::vector<uint8_t> FrameBuf;
  uint64_t RecordBytesLeft = 0;
};

/// Validates an `.agtrace` header + symbol section against the file size
/// and re-interns the symbols. Shared by the stdio and mmap readers.
/// \p Bytes/\p Size cover the whole file image. Returns false with \p Err
/// set on any structural problem.
bool validateTraceImage(const uint8_t *Bytes, uint64_t Size,
                        TraceFileHeader &Header,
                        std::vector<SymbolId> &Remap, std::string *Err);

/// Outcome counters of a torn-tail prefix recovery scan.
struct TraceRecoveryInfo {
  uint64_t Frames = 0;      ///< record frames recovered
  uint64_t Records = 0;     ///< records recovered
  uint64_t RecordBytes = 0; ///< bytes of the recovered record frames
  uint64_t DroppedBytes = 0; ///< tail bytes abandoned after the last clean frame
  /// Why the scan stopped early (empty: the image ended exactly on a frame
  /// boundary, nothing was lost).
  std::string TailError;
};

/// Salvages the clean frame-aligned prefix of a v4 `.agtrace` image whose
/// strict open failed — a recording cut off by a crash (no final symbol
/// table, header counts still zero), or a finalized file with a damaged
/// tail. Walks frames from the end of the header: symbol-checkpoint frames
/// extend \p Remap (re-interning into this process's table), record frames
/// are decoded in full and handed to \p OnFrame(Records, Count) — a frame
/// that does not decode completely is discarded, so the caller only ever
/// sees whole frames. Stops at the first torn or corrupt frame and reports
/// what was dropped in \p Info.
///
/// Returns true when the image is recoverable v4 — intact 8-byte magic and
/// a v4 version field (a cut inside the 32-byte header counts, with an
/// empty prefix) — even if zero frames survive. Returns false with \p Err
/// set when the image is not an `.agtrace` at all or predates checkpoint
/// recovery (raw v1..v3).
bool recoverV4Prefix(
    const uint8_t *Bytes, uint64_t Size, std::vector<SymbolId> &Remap,
    const std::function<void(const TraceRecord *, size_t)> &OnFrame,
    TraceRecoveryInfo *Info = nullptr, std::string *Err = nullptr);

/// One record frame located by a pre-scan of a v4 record section. The scan
/// reads only frame headers, so locating every frame of a trace is O(frame
/// count), not O(record count) — the frames can then be decoded in any
/// order (they are self-contained) while being *applied* in this order.
struct TraceFrameRef {
  /// Byte offset of the frame header within the scanned image.
  uint64_t Offset = 0;
  /// Total frame size: header plus the eight column streams.
  uint32_t Bytes = 0;
  /// Record count from the frame header.
  uint32_t Records = 0;
  /// Symbols visible when this frame is applied: the remap prefix length
  /// accumulated from the checkpoint frames preceding it (recovery scans;
  /// scans of finalized files leave it 0 — the full symbol section
  /// supersedes the checkpoints).
  uint32_t RemapSize = 0;
};

/// Locates every record frame of a *validated* v4 record section
/// [P, P+Avail) holding \p RecordCount records in total. Symbol-checkpoint
/// frames are skipped (the finalized symbol section supersedes them).
/// Structural validation only — frame magics, header plausibility, and
/// column-size bounds; the per-record varint streams are validated when
/// the frames are decoded. Returns false with \p Err on any structural
/// problem (a validated image should never trip one).
bool scanV4Frames(const uint8_t *P, size_t Avail, uint64_t RecordCount,
                  std::vector<TraceFrameRef> &Out, std::string *Err = nullptr);

/// The recovery twin of scanV4Frames: walks the frame chain of a torn or
/// truncated v4 image exactly like recoverV4Prefix — growing \p Remap from
/// the interleaved symbol checkpoints and stopping at the first torn or
/// structurally corrupt frame — but records frame boundaries instead of
/// decoding, so a parallel ingester can decode the located frames
/// concurrently. Each emitted TraceFrameRef carries the remap prefix
/// length in force when it is applied. \p Info receives the same counters
/// recoverV4Prefix reports, except that Records/RecordBytes describe the
/// *located* frames: a frame whose varint streams later fail to decode
/// must be discarded along with everything after it, mirroring
/// recoverV4Prefix's clean-prefix guarantee. Return value and \p Err
/// follow recoverV4Prefix.
bool scanV4Recovery(const uint8_t *Bytes, uint64_t Size,
                    std::vector<TraceFrameRef> &Out,
                    std::vector<SymbolId> &Remap,
                    TraceRecoveryInfo *Info = nullptr,
                    std::string *Err = nullptr);

/// Memory-maps an `.agtrace` file read-only and exposes the validated
/// header, symbol remap, and the raw record-section bytes for zero-copy
/// decoding. Falls back cleanly (open() returns false with
/// "mmap unavailable") on platforms without mmap; callers then use
/// TraceFileReader.
class TraceMmapReader {
public:
  TraceMmapReader() = default;
  ~TraceMmapReader();

  TraceMmapReader(const TraceMmapReader &) = delete;
  TraceMmapReader &operator=(const TraceMmapReader &) = delete;

  bool open(const std::string &Path, std::string *Err = nullptr);

  /// Maps \p Path without any validation — the input to a prefix-recovery
  /// scan of a torn file (recoverV4Prefix). header()/symbolRemap()/
  /// recordData() are meaningless after openRaw; use data()/size().
  bool openRaw(const std::string &Path, std::string *Err = nullptr);

  bool isOpen() const { return Base != nullptr; }

  /// The whole mapped image (valid after open or openRaw).
  const uint8_t *data() const { return Base; }
  uint64_t size() const { return Size; }

  const TraceFileHeader &header() const { return Header; }
  const std::vector<SymbolId> &symbolRemap() const { return Remap; }

  /// The record section: [recordData(), recordData() + recordByteSize()).
  const uint8_t *recordData() const {
    return Base + sizeof(TraceFileHeader);
  }
  uint64_t recordByteSize() const {
    return Header.SymtabOffset - sizeof(TraceFileHeader);
  }

private:
  const uint8_t *Base = nullptr;
  uint64_t Size = 0;
  TraceFileHeader Header = {};
  std::vector<SymbolId> Remap;
};

} // namespace trace
} // namespace asyncg

#endif // ASYNCG_SUPPORT_TRACEFORMAT_H
