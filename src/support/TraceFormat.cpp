//===- TraceFormat.cpp - Compact binary trace records -------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/TraceFormat.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define ASYNCG_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace asyncg;
using namespace asyncg::trace;

static bool fail(std::string *Err, const char *Message) {
  if (Err)
    *Err = Message;
  return false;
}

//===----------------------------------------------------------------------===//
// V4FrameEncoder
//===----------------------------------------------------------------------===//

void V4FrameEncoder::encodeFrame(const TraceRecord *Records, size_t N,
                                 std::vector<uint8_t> &Out) {
  for (TraceRecord &P : Prev)
    P = TraceRecord();
  for (unsigned C = 0; C != FrameColumns; ++C)
    Col[C].clear();

  for (size_t I = 0; I != N; ++I) {
    const TraceRecord &R = Records[I];
    uint8_t Op = R.Op;
    TraceRecord &P = Prev[Op < TraceOpLimit ? Op : 0];
    uint8_t Mask = 0;
    if (R.A8 != P.A8) {
      Mask |= MaskA8;
      appendVarint(Col[2], zigzagEncode(static_cast<int64_t>(R.A8) -
                                        static_cast<int64_t>(P.A8)));
    }
    if (R.B16 != P.B16) {
      Mask |= MaskB16;
      appendVarint(Col[3], zigzagEncode(static_cast<int64_t>(R.B16) -
                                        static_cast<int64_t>(P.B16)));
    }
    if (R.C32 != P.C32) {
      Mask |= MaskC32;
      appendVarint(Col[4], zigzagEncode(static_cast<int64_t>(R.C32) -
                                        static_cast<int64_t>(P.C32)));
    }
    if (R.D64 != P.D64) {
      Mask |= MaskD64;
      appendVarint(Col[5], zigzagEncode(static_cast<int64_t>(R.D64 - P.D64)));
    }
    if (R.E64 != P.E64) {
      Mask |= MaskE64;
      appendVarint(Col[6], zigzagEncode(static_cast<int64_t>(R.E64 - P.E64)));
    }
    if (R.F64 != P.F64) {
      Mask |= MaskF64;
      appendVarint(Col[7], zigzagEncode(static_cast<int64_t>(R.F64 - P.F64)));
    }
    Col[0].push_back(Op);
    Col[1].push_back(Mask);
    P = R;
  }

  TraceFrameHeader H;
  H.Magic = FrameMagic;
  H.RecordCount = static_cast<uint32_t>(N);
  for (unsigned C = 0; C != FrameColumns; ++C)
    H.ColBytes[C] = static_cast<uint32_t>(Col[C].size());
  size_t HeaderAt = Out.size();
  Out.resize(HeaderAt + sizeof(H));
  std::memcpy(Out.data() + HeaderAt, &H, sizeof(H));
  for (unsigned C = 0; C != FrameColumns; ++C)
    Out.insert(Out.end(), Col[C].begin(), Col[C].end());
}

//===----------------------------------------------------------------------===//
// TraceFileWriter
//===----------------------------------------------------------------------===//

TraceFileWriter::~TraceFileWriter() {
  if (File)
    std::fclose(File);
}

bool TraceFileWriter::open(const std::string &Path, uint32_t Ver) {
  if (Ver < TraceMinVersion || Ver > TraceVersion)
    return false;
  File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  Count = 0;
  RecordSectionBytes = 0;
  Version = Ver;
  CkptSyms = 0;
  Pending.clear();
  TraceFileHeader H = {};
  std::memcpy(H.Magic, TraceMagic, sizeof(H.Magic));
  H.Version = Version;
  return std::fwrite(&H, sizeof(H), 1, File) == 1;
}

bool TraceFileWriter::writeSymCheckpoint() {
  SymbolTable &Tab = symtab();
  uint64_t Now = Tab.size();
  if (Now == CkptSyms)
    return true;
  TraceSymFrameHeader H = {};
  H.Magic = FrameSymMagic;
  H.SymCount = static_cast<uint32_t>(Now - CkptSyms);
  H.FirstId = CkptSyms;
  uint64_t ByteLen = 0;
  for (uint64_t Id = CkptSyms; Id != Now; ++Id)
    ByteLen += sizeof(uint32_t) + Tab.view(static_cast<SymbolId>(Id)).size();
  H.ByteLen = ByteLen;
  if (std::fwrite(&H, sizeof(H), 1, File) != 1)
    return false;
  for (uint64_t Id = CkptSyms; Id != Now; ++Id) {
    std::string_view S = Tab.view(static_cast<SymbolId>(Id));
    uint32_t Len = static_cast<uint32_t>(S.size());
    if (std::fwrite(&Len, sizeof(Len), 1, File) != 1 ||
        (Len != 0 && std::fwrite(S.data(), 1, Len, File) != Len))
      return false;
  }
  // Checkpoint bytes are durability overhead, not record payload, so they
  // stay out of recordBytes() (the compression metric).
  CkptSyms = Now;
  return true;
}

bool TraceFileWriter::flushFrame() {
  if (Pending.empty())
    return true;
  // Symbols first: a recovery scan replays frames front to back, so every
  // id the frame references must already be on disk when the frame is.
  if (Checkpoints && !writeSymCheckpoint())
    return false;
  FrameBuf.clear();
  Encoder.encodeFrame(Pending.data(), Pending.size(), FrameBuf);
  Pending.clear();
  if (std::fwrite(FrameBuf.data(), 1, FrameBuf.size(), File) !=
      FrameBuf.size())
    return false;
  RecordSectionBytes += FrameBuf.size();
  // Frame-aligned flush checkpoint: after this line the on-disk prefix is
  // recoverable up to and including this frame even if the process dies.
  if (Checkpoints && std::fflush(File) != 0)
    return false;
  return true;
}

bool TraceFileWriter::append(const TraceRecord *Records, size_t N) {
  if (!File || N == 0)
    return File != nullptr;
  if (Version > TraceLastRawVersion) {
    Count += N;
    while (N != 0) {
      size_t Take = FrameRecords - Pending.size();
      if (Take > N)
        Take = N;
      Pending.insert(Pending.end(), Records, Records + Take);
      Records += Take;
      N -= Take;
      if (Pending.size() == FrameRecords && !flushFrame())
        return false;
    }
    return true;
  }
  if (std::fwrite(Records, sizeof(TraceRecord), N, File) != N)
    return false;
  Count += N;
  RecordSectionBytes += N * sizeof(TraceRecord);
  return true;
}

bool TraceFileWriter::finalize() {
  if (!File)
    return false;
  bool Ok = true;
  if (Version > TraceLastRawVersion)
    Ok = flushFrame();
  long SymtabOffset = std::ftell(File);
  Ok = Ok && SymtabOffset > 0;

  // Dump the whole symbol table: every id a record can reference is below
  // the current size, and for trace-sized workloads the section is small.
  SymbolTable &Tab = symtab();
  uint64_t SymCount = Tab.size();
  Ok = Ok && std::fwrite(&SymCount, sizeof(SymCount), 1, File) == 1;
  for (SymbolId Id = 0; Ok && Id < SymCount; ++Id) {
    std::string_view S = Tab.view(Id);
    uint32_t Len = static_cast<uint32_t>(S.size());
    Ok = std::fwrite(&Len, sizeof(Len), 1, File) == 1 &&
         (Len == 0 || std::fwrite(S.data(), 1, Len, File) == Len);
  }

  if (Ok) {
    TraceFileHeader H = {};
    std::memcpy(H.Magic, TraceMagic, sizeof(H.Magic));
    H.Version = Version;
    H.RecordCount = Count;
    H.SymtabOffset = static_cast<uint64_t>(SymtabOffset);
    Ok = std::fseek(File, 0, SEEK_SET) == 0 &&
         std::fwrite(&H, sizeof(H), 1, File) == 1;
  }
  Ok = std::fclose(File) == 0 && Ok;
  File = nullptr;
  return Ok;
}

//===----------------------------------------------------------------------===//
// Shared image validation
//===----------------------------------------------------------------------===//

bool trace::validateTraceImage(const uint8_t *Bytes, uint64_t Size,
                               TraceFileHeader &Header,
                               std::vector<SymbolId> &Remap,
                               std::string *Err) {
  if (Size < sizeof(TraceFileHeader))
    return fail(Err, "trace file truncated: no header");
  std::memcpy(&Header, Bytes, sizeof(Header));
  if (std::memcmp(Header.Magic, TraceMagic, sizeof(Header.Magic)) != 0)
    return fail(Err, "bad magic: not an .agtrace file");
  if (Header.Version < TraceMinVersion || Header.Version > TraceVersion)
    return fail(Err, "unsupported trace version");
  if (Header.SymtabOffset < sizeof(TraceFileHeader) ||
      Header.SymtabOffset > Size)
    return fail(Err, "trace file truncated: no symbol section");
  if (Header.Version <= TraceLastRawVersion) {
    uint64_t RecordBytes = Header.SymtabOffset - sizeof(TraceFileHeader);
    if (RecordBytes / sizeof(TraceRecord) < Header.RecordCount)
      return fail(Err, "trace file truncated: record section");
  }

  // Symbol section: count + length-prefixed strings, every length checked
  // against the bytes actually present (a corrupt length must not drive a
  // multi-gigabyte allocation).
  const uint8_t *P = Bytes + Header.SymtabOffset;
  const uint8_t *End = Bytes + Size;
  if (End - P < static_cast<ptrdiff_t>(sizeof(uint64_t)))
    return fail(Err, "trace file truncated: symbol count");
  uint64_t SymCount;
  std::memcpy(&SymCount, P, sizeof(SymCount));
  P += sizeof(SymCount);
  // Each symbol needs at least its 4-byte length prefix.
  if (SymCount > static_cast<uint64_t>(End - P) / sizeof(uint32_t))
    return fail(Err, "corrupt trace: implausible symbol count");
  Remap.clear();
  Remap.reserve(static_cast<size_t>(SymCount));
  std::string Scratch;
  for (uint64_t I = 0; I != SymCount; ++I) {
    if (End - P < static_cast<ptrdiff_t>(sizeof(uint32_t)))
      return fail(Err, "trace file truncated: symbol length");
    uint32_t Len;
    std::memcpy(&Len, P, sizeof(Len));
    P += sizeof(Len);
    if (Len > static_cast<uint64_t>(End - P))
      return fail(Err, "trace file truncated: symbol bytes");
    Scratch.assign(reinterpret_cast<const char *>(P), Len);
    P += Len;
    Remap.push_back(symtab().intern(Scratch));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Torn-tail prefix recovery
//===----------------------------------------------------------------------===//

/// Reads the symbol-checkpoint frame at \p Bytes + \p Off (\p Avail bytes
/// remaining), re-interning its strings and appending the new ids to
/// \p Remap. On success sets \p Consumed to the frame's total size. On a
/// torn or corrupt checkpoint returns false with \p Stop describing why;
/// symbols already re-interned before the damage are harmless. Shared by
/// recoverV4Prefix (decode-as-you-scan) and scanV4Recovery (locate-only).
static bool readSymCheckpoint(const uint8_t *Bytes, uint64_t Off,
                              uint64_t Avail, std::vector<SymbolId> &Remap,
                              uint64_t &Consumed, std::string &Stop) {
  TraceSymFrameHeader SH;
  std::memcpy(&SH, Bytes + Off, sizeof(SH));
  if (SH.ByteLen > Avail - sizeof(SH)) {
    Stop = "trace file truncated: symbol checkpoint";
    return false;
  }
  if (SH.FirstId != Remap.size()) {
    Stop = "corrupt trace: checkpoint ids not contiguous";
    return false;
  }
  const uint8_t *P = Bytes + Off + sizeof(SH);
  const uint8_t *End = P + SH.ByteLen;
  std::string Scratch;
  for (uint32_t I = 0; I != SH.SymCount; ++I) {
    if (End - P < static_cast<ptrdiff_t>(sizeof(uint32_t))) {
      Stop = "corrupt trace: checkpoint symbol bytes";
      return false;
    }
    uint32_t Len;
    std::memcpy(&Len, P, sizeof(Len));
    P += sizeof(Len);
    if (Len > static_cast<uint64_t>(End - P)) {
      Stop = "corrupt trace: checkpoint symbol bytes";
      return false;
    }
    Scratch.assign(reinterpret_cast<const char *>(P), Len);
    P += Len;
    Remap.push_back(symtab().intern(Scratch));
  }
  if (P != End) {
    Stop = "corrupt trace: checkpoint symbol bytes";
    return false;
  }
  Consumed = sizeof(SH) + SH.ByteLen;
  return true;
}

/// Structural validation of the record-frame header at \p P: the checks
/// decodeV4Frame performs before touching any varint stream. On success
/// sets the frame's total size and record count. Lets a pre-scan locate
/// frame boundaries in O(1) per frame without decoding the columns.
static bool checkFrameHeader(const uint8_t *P, size_t Avail,
                             size_t &TotalBytes, uint32_t &Records,
                             std::string *Err) {
  if (Avail < sizeof(TraceFrameHeader))
    return fail(Err, "trace file truncated: frame header");
  TraceFrameHeader H;
  std::memcpy(&H, P, sizeof(H));
  if (H.Magic != FrameMagic)
    return fail(Err, "corrupt trace: bad frame magic");
  if (H.RecordCount == 0 || H.RecordCount > FrameMaxRecords)
    return fail(Err, "corrupt trace: implausible frame record count");
  uint64_t Payload = 0;
  for (unsigned C = 0; C != FrameColumns; ++C)
    Payload += H.ColBytes[C];
  if (Payload > Avail - sizeof(TraceFrameHeader))
    return fail(Err, "trace file truncated: frame payload");
  if (H.ColBytes[0] != H.RecordCount || H.ColBytes[1] != H.RecordCount)
    return fail(Err, "corrupt trace: frame op/mask column size");
  TotalBytes = sizeof(TraceFrameHeader) + static_cast<size_t>(Payload);
  Records = H.RecordCount;
  return true;
}

bool trace::scanV4Frames(const uint8_t *P, size_t Avail, uint64_t RecordCount,
                         std::vector<TraceFrameRef> &Out, std::string *Err) {
  Out.clear();
  uint64_t Records = 0;
  uint64_t Off = 0;
  while (Records < RecordCount) {
    if (Off >= Avail)
      return fail(Err, "trace file truncated: missing frames");
    size_t Skip = 0;
    if (skipSymFrame(P + Off, Avail - static_cast<size_t>(Off), Skip)) {
      // Interleaved symbol checkpoint: superseded by the finalized symbol
      // section, so a strict scan only steps over it.
      Off += Skip;
      continue;
    }
    TraceFrameRef F;
    size_t Bytes = 0;
    uint32_t N = 0;
    if (!checkFrameHeader(P + Off, Avail - static_cast<size_t>(Off), Bytes, N,
                          Err))
      return false;
    F.Offset = Off;
    F.Bytes = static_cast<uint32_t>(Bytes);
    F.Records = N;
    Out.push_back(F);
    Records += N;
    Off += Bytes;
  }
  if (Records != RecordCount)
    return fail(Err, "corrupt trace: frame record counts disagree with header");
  return true;
}

bool trace::scanV4Recovery(const uint8_t *Bytes, uint64_t Size,
                           std::vector<TraceFrameRef> &Out,
                           std::vector<SymbolId> &Remap,
                           TraceRecoveryInfo *Info, std::string *Err) {
  TraceRecoveryInfo Local;
  TraceRecoveryInfo &R = Info ? *Info : Local;
  R = TraceRecoveryInfo();
  Out.clear();
  Remap.clear();
  if (Size < sizeof(TraceMagic) ||
      std::memcmp(Bytes, TraceMagic, sizeof(TraceMagic)) != 0)
    return fail(Err, "bad magic: not an .agtrace file");
  if (Size < sizeof(TraceFileHeader)) {
    R.DroppedBytes = Size;
    R.TailError = "trace file truncated: mid-header";
    return true;
  }
  TraceFileHeader H;
  std::memcpy(&H, Bytes, sizeof(H));
  if (H.Version <= TraceLastRawVersion || H.Version > TraceVersion)
    return fail(Err, "trace version has no recovery checkpoints");

  uint64_t Off = sizeof(TraceFileHeader);
  std::string Stop;
  while (Off < Size) {
    uint64_t Avail = Size - Off;
    uint32_t Magic = 0;
    if (Avail >= sizeof(Magic))
      std::memcpy(&Magic, Bytes + Off, sizeof(Magic));
    if (Avail < sizeof(TraceFrameHeader)) {
      Stop = "trace file truncated: frame header";
      break;
    }
    if (Magic == FrameSymMagic) {
      uint64_t Consumed = 0;
      if (!readSymCheckpoint(Bytes, Off, Avail, Remap, Consumed, Stop))
        break;
      Off += Consumed;
      continue;
    }
    std::string FrameErr;
    TraceFrameRef F;
    size_t FrameBytes = 0;
    uint32_t N = 0;
    if (!checkFrameHeader(Bytes + Off, static_cast<size_t>(Avail), FrameBytes,
                          N, &FrameErr)) {
      Stop = FrameErr;
      break;
    }
    F.Offset = Off;
    F.Bytes = static_cast<uint32_t>(FrameBytes);
    F.Records = N;
    F.RemapSize = static_cast<uint32_t>(Remap.size());
    Out.push_back(F);
    ++R.Frames;
    R.Records += N;
    R.RecordBytes += FrameBytes;
    Off += FrameBytes;
  }
  R.DroppedBytes = Size - Off;
  R.TailError = Stop;
  return true;
}

bool trace::recoverV4Prefix(
    const uint8_t *Bytes, uint64_t Size, std::vector<SymbolId> &Remap,
    const std::function<void(const TraceRecord *, size_t)> &OnFrame,
    TraceRecoveryInfo *Info, std::string *Err) {
  TraceRecoveryInfo Local;
  TraceRecoveryInfo &R = Info ? *Info : Local;
  R = TraceRecoveryInfo();
  Remap.clear();
  if (Size < sizeof(TraceMagic) ||
      std::memcmp(Bytes, TraceMagic, sizeof(TraceMagic)) != 0)
    return fail(Err, "bad magic: not an .agtrace file");
  if (Size < sizeof(TraceFileHeader)) {
    // Cut inside the 32-byte header: the recording died before any frame
    // reached disk. The clean prefix is empty — still a successful
    // recovery, just of nothing.
    R.DroppedBytes = Size;
    R.TailError = "trace file truncated: mid-header";
    return true;
  }
  TraceFileHeader H;
  std::memcpy(&H, Bytes, sizeof(H));
  if (H.Version <= TraceLastRawVersion || H.Version > TraceVersion)
    return fail(Err, "trace version has no recovery checkpoints");

  uint64_t Off = sizeof(TraceFileHeader);
  std::vector<TraceRecord> Buf;
  std::string Stop;
  while (Off < Size) {
    uint64_t Avail = Size - Off;
    uint32_t Magic = 0;
    if (Avail >= sizeof(Magic))
      std::memcpy(&Magic, Bytes + Off, sizeof(Magic));
    if (Avail < sizeof(TraceFrameHeader)) {
      Stop = "trace file truncated: frame header";
      break;
    }
    if (Magic == FrameSymMagic) {
      // Stops before any frame that would reference ids the damaged
      // checkpoint failed to deliver; symbols already re-interned are
      // harmless.
      uint64_t Consumed = 0;
      if (!readSymCheckpoint(Bytes, Off, Avail, Remap, Consumed, Stop))
        break;
      Off += Consumed;
      continue;
    }
    if (Magic != FrameMagic) {
      Stop = "corrupt trace: bad frame magic";
      break;
    }
    // Decode the whole frame into a scratch buffer first: a frame that
    // fails mid-decode is dropped entirely, so the caller only ever sees
    // complete frames (the clean-prefix guarantee).
    Buf.clear();
    size_t Consumed = 0;
    std::string FrameErr;
    if (!decodeV4Frame(
            Bytes + Off, static_cast<size_t>(Avail), Consumed,
            [&Buf](const TraceRecord &Rec) { Buf.push_back(Rec); },
            &FrameErr)) {
      Stop = FrameErr;
      break;
    }
    OnFrame(Buf.data(), Buf.size());
    ++R.Frames;
    R.Records += Buf.size();
    R.RecordBytes += Consumed;
    Off += Consumed;
  }
  R.DroppedBytes = Size - Off;
  R.TailError = Stop;
  return true;
}

//===----------------------------------------------------------------------===//
// TraceFileReader
//===----------------------------------------------------------------------===//

TraceFileReader::~TraceFileReader() {
  if (File)
    std::fclose(File);
}

bool TraceFileReader::open(const std::string &Path, std::string *Err) {
  File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return fail(Err, "cannot open trace file");
  if (std::fseek(File, 0, SEEK_END) != 0)
    return fail(Err, "trace file seek failed");
  long Sz = std::ftell(File);
  if (Sz < 0)
    return fail(Err, "trace file seek failed");
  FileSize = static_cast<uint64_t>(Sz);
  if (std::fseek(File, 0, SEEK_SET) != 0 ||
      std::fread(&Header, sizeof(Header), 1, File) != 1)
    return fail(Err, "trace file truncated: no header");
  if (std::memcmp(Header.Magic, TraceMagic, sizeof(Header.Magic)) != 0)
    return fail(Err, "bad magic: not an .agtrace file");
  if (Header.Version < TraceMinVersion || Header.Version > TraceVersion)
    return fail(Err, "unsupported trace version");
  if (Header.SymtabOffset < sizeof(TraceFileHeader) ||
      Header.SymtabOffset > FileSize)
    return fail(Err, "trace file truncated: no symbol section");
  if (Header.Version <= TraceLastRawVersion) {
    uint64_t RecordBytes = Header.SymtabOffset - sizeof(TraceFileHeader);
    if (RecordBytes / sizeof(TraceRecord) < Header.RecordCount)
      return fail(Err, "trace file truncated: record section");
  }

  // Load the symbol section and re-intern into this process's table.
  if (std::fseek(File, static_cast<long>(Header.SymtabOffset), SEEK_SET) != 0)
    return fail(Err, "trace file truncated: no symbol section");
  uint64_t SymCount = 0;
  if (std::fread(&SymCount, sizeof(SymCount), 1, File) != 1)
    return fail(Err, "trace file truncated: symbol count");
  uint64_t SymBytesLeft = FileSize - Header.SymtabOffset - sizeof(SymCount);
  if (SymCount > SymBytesLeft / sizeof(uint32_t))
    return fail(Err, "corrupt trace: implausible symbol count");
  Remap.clear();
  Remap.reserve(static_cast<size_t>(SymCount));
  std::string Scratch;
  for (uint64_t I = 0; I != SymCount; ++I) {
    uint32_t Len = 0;
    if (std::fread(&Len, sizeof(Len), 1, File) != 1)
      return fail(Err, "trace file truncated: symbol length");
    SymBytesLeft -= sizeof(Len);
    if (Len > SymBytesLeft)
      return fail(Err, "trace file truncated: symbol bytes");
    Scratch.resize(Len);
    if (Len != 0 && std::fread(Scratch.data(), 1, Len, File) != Len)
      return fail(Err, "trace file truncated: symbol bytes");
    SymBytesLeft -= Len;
    Remap.push_back(symtab().intern(Scratch));
  }

  if (std::fseek(File, sizeof(TraceFileHeader), SEEK_SET) != 0)
    return fail(Err, "trace file seek failed");
  ReadSoFar = 0;
  RecordBytesLeft = Header.SymtabOffset - sizeof(TraceFileHeader);
  Decoded.clear();
  DecodedPos = 0;
  ReadError.clear();
  return true;
}

bool TraceFileReader::loadNextFrame() {
  TraceFrameHeader FH;
  for (;;) {
    if (RecordBytesLeft < sizeof(FH)) {
      ReadError = "trace file truncated: frame header";
      return false;
    }
    if (std::fread(&FH, sizeof(FH), 1, File) != 1) {
      ReadError = "trace file truncated: frame header";
      return false;
    }
    RecordBytesLeft -= sizeof(FH);
    if (FH.Magic != FrameSymMagic)
      break;
    // Symbol checkpoint: redundant in a finalized file (the trailing
    // symbol section supersedes it) — skip the payload.
    TraceSymFrameHeader SH;
    std::memcpy(&SH, &FH, sizeof(SH));
    if (SH.ByteLen > RecordBytesLeft ||
        std::fseek(File, static_cast<long>(SH.ByteLen), SEEK_CUR) != 0) {
      ReadError = "trace file truncated: symbol checkpoint";
      return false;
    }
    RecordBytesLeft -= SH.ByteLen;
  }
  if (FH.Magic != FrameMagic) {
    ReadError = "corrupt trace: bad frame magic";
    return false;
  }
  if (FH.RecordCount == 0 || FH.RecordCount > FrameMaxRecords) {
    ReadError = "corrupt trace: implausible frame record count";
    return false;
  }
  uint64_t Payload = 0;
  for (unsigned C = 0; C != FrameColumns; ++C)
    Payload += FH.ColBytes[C];
  if (Payload > RecordBytesLeft) {
    ReadError = "trace file truncated: frame payload";
    return false;
  }
  // Re-assemble header + payload so the shared frame decoder sees one
  // contiguous image.
  FrameBuf.resize(sizeof(FH) + static_cast<size_t>(Payload));
  std::memcpy(FrameBuf.data(), &FH, sizeof(FH));
  if (Payload != 0 &&
      std::fread(FrameBuf.data() + sizeof(FH), 1,
                 static_cast<size_t>(Payload), File) != Payload) {
    ReadError = "trace file truncated: frame payload";
    return false;
  }
  RecordBytesLeft -= Payload;

  Decoded.clear();
  Decoded.reserve(FH.RecordCount);
  DecodedPos = 0;
  size_t Consumed = 0;
  return decodeV4Frame(
      FrameBuf.data(), FrameBuf.size(), Consumed,
      [this](const TraceRecord &R) { Decoded.push_back(R); }, &ReadError);
}

size_t TraceFileReader::read(TraceRecord *Out, size_t Max) {
  if (!File || ReadSoFar >= Header.RecordCount || !ReadError.empty())
    return 0;
  uint64_t Left = Header.RecordCount - ReadSoFar;
  size_t Want = Max < Left ? Max : static_cast<size_t>(Left);

  if (Header.Version <= TraceLastRawVersion) {
    size_t Got = std::fread(Out, sizeof(TraceRecord), Want, File);
    ReadSoFar += Got;
    return Got;
  }

  size_t Total = 0;
  while (Total != Want) {
    if (DecodedPos == Decoded.size() && !loadNextFrame())
      break;
    size_t Avail = Decoded.size() - DecodedPos;
    size_t Take = Want - Total < Avail ? Want - Total : Avail;
    std::memcpy(Out + Total, Decoded.data() + DecodedPos,
                Take * sizeof(TraceRecord));
    DecodedPos += Take;
    Total += Take;
  }
  ReadSoFar += Total;
  return Total;
}

//===----------------------------------------------------------------------===//
// TraceMmapReader
//===----------------------------------------------------------------------===//

TraceMmapReader::~TraceMmapReader() {
#if ASYNCG_HAVE_MMAP
  if (Base)
    ::munmap(const_cast<uint8_t *>(Base), static_cast<size_t>(Size));
#endif
}

bool TraceMmapReader::open(const std::string &Path, std::string *Err) {
#if ASYNCG_HAVE_MMAP
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return fail(Err, "cannot open trace file");
  struct stat St;
  if (::fstat(Fd, &St) != 0 || St.st_size < 0) {
    ::close(Fd);
    return fail(Err, "cannot stat trace file");
  }
  Size = static_cast<uint64_t>(St.st_size);
  if (Size < sizeof(TraceFileHeader)) {
    ::close(Fd);
    return fail(Err, "trace file truncated: no header");
  }
  // The whole (small, columnar) file is consumed front to back exactly
  // once, so populate the mapping in one batched read up front instead of
  // taking a synchronous page fault per 4K of frame data on a cold cache.
  int Flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  Flags |= MAP_POPULATE;
#endif
  void *Map =
      ::mmap(nullptr, static_cast<size_t>(Size), PROT_READ, Flags, Fd, 0);
  ::close(Fd);
  if (Map == MAP_FAILED)
    return fail(Err, "cannot mmap trace file");
  ::madvise(Map, static_cast<size_t>(Size), MADV_SEQUENTIAL);
  Base = static_cast<const uint8_t *>(Map);
  if (!validateTraceImage(Base, Size, Header, Remap, Err)) {
    ::munmap(Map, static_cast<size_t>(Size));
    Base = nullptr;
    return false;
  }
  return true;
#else
  (void)Path;
  return fail(Err, "mmap unavailable on this platform");
#endif
}

bool TraceMmapReader::openRaw(const std::string &Path, std::string *Err) {
#if ASYNCG_HAVE_MMAP
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return fail(Err, "cannot open trace file");
  struct stat St;
  if (::fstat(Fd, &St) != 0 || St.st_size < 0) {
    ::close(Fd);
    return fail(Err, "cannot stat trace file");
  }
  Size = static_cast<uint64_t>(St.st_size);
  if (Size == 0) {
    ::close(Fd);
    return fail(Err, "trace file truncated: no header");
  }
  void *Map =
      ::mmap(nullptr, static_cast<size_t>(Size), PROT_READ, MAP_PRIVATE, Fd, 0);
  ::close(Fd);
  if (Map == MAP_FAILED)
    return fail(Err, "cannot mmap trace file");
  Base = static_cast<const uint8_t *>(Map);
  return true;
#else
  (void)Path;
  return fail(Err, "mmap unavailable on this platform");
#endif
}
