//===- TraceFormat.cpp - Compact binary trace records -------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/TraceFormat.h"

#include <cstring>

using namespace asyncg;
using namespace asyncg::trace;

//===----------------------------------------------------------------------===//
// TraceFileWriter
//===----------------------------------------------------------------------===//

TraceFileWriter::~TraceFileWriter() {
  if (File)
    std::fclose(File);
}

bool TraceFileWriter::open(const std::string &Path) {
  File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  Count = 0;
  TraceFileHeader H = {};
  std::memcpy(H.Magic, TraceMagic, sizeof(H.Magic));
  H.Version = TraceVersion;
  return std::fwrite(&H, sizeof(H), 1, File) == 1;
}

bool TraceFileWriter::append(const TraceRecord *Records, size_t N) {
  if (!File || N == 0)
    return File != nullptr;
  if (std::fwrite(Records, sizeof(TraceRecord), N, File) != N)
    return false;
  Count += N;
  return true;
}

bool TraceFileWriter::finalize() {
  if (!File)
    return false;
  bool Ok = true;
  long SymtabOffset = std::ftell(File);
  Ok = Ok && SymtabOffset > 0;

  // Dump the whole symbol table: every id a record can reference is below
  // the current size, and for trace-sized workloads the section is small.
  SymbolTable &Tab = symtab();
  uint64_t SymCount = Tab.size();
  Ok = Ok && std::fwrite(&SymCount, sizeof(SymCount), 1, File) == 1;
  for (SymbolId Id = 0; Ok && Id < SymCount; ++Id) {
    std::string_view S = Tab.view(Id);
    uint32_t Len = static_cast<uint32_t>(S.size());
    Ok = std::fwrite(&Len, sizeof(Len), 1, File) == 1 &&
         (Len == 0 || std::fwrite(S.data(), 1, Len, File) == Len);
  }

  if (Ok) {
    TraceFileHeader H = {};
    std::memcpy(H.Magic, TraceMagic, sizeof(H.Magic));
    H.Version = TraceVersion;
    H.RecordCount = Count;
    H.SymtabOffset = static_cast<uint64_t>(SymtabOffset);
    Ok = std::fseek(File, 0, SEEK_SET) == 0 &&
         std::fwrite(&H, sizeof(H), 1, File) == 1;
  }
  Ok = std::fclose(File) == 0 && Ok;
  File = nullptr;
  return Ok;
}

//===----------------------------------------------------------------------===//
// TraceFileReader
//===----------------------------------------------------------------------===//

TraceFileReader::~TraceFileReader() {
  if (File)
    std::fclose(File);
}

static bool fail(std::string *Err, const char *Message) {
  if (Err)
    *Err = Message;
  return false;
}

bool TraceFileReader::open(const std::string &Path, std::string *Err) {
  File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return fail(Err, "cannot open trace file");
  if (std::fread(&Header, sizeof(Header), 1, File) != 1)
    return fail(Err, "trace file truncated: no header");
  if (std::memcmp(Header.Magic, TraceMagic, sizeof(Header.Magic)) != 0)
    return fail(Err, "bad magic: not an .agtrace file");
  if (Header.Version < TraceMinVersion || Header.Version > TraceVersion)
    return fail(Err, "unsupported trace version");

  // Load the symbol section and re-intern into this process's table.
  if (std::fseek(File, static_cast<long>(Header.SymtabOffset), SEEK_SET) != 0)
    return fail(Err, "trace file truncated: no symbol section");
  uint64_t SymCount = 0;
  if (std::fread(&SymCount, sizeof(SymCount), 1, File) != 1)
    return fail(Err, "trace file truncated: symbol count");
  Remap.clear();
  Remap.reserve(SymCount);
  std::string Scratch;
  for (uint64_t I = 0; I != SymCount; ++I) {
    uint32_t Len = 0;
    if (std::fread(&Len, sizeof(Len), 1, File) != 1)
      return fail(Err, "trace file truncated: symbol length");
    Scratch.resize(Len);
    if (Len != 0 && std::fread(Scratch.data(), 1, Len, File) != Len)
      return fail(Err, "trace file truncated: symbol bytes");
    Remap.push_back(symtab().intern(Scratch));
  }

  if (std::fseek(File, sizeof(TraceFileHeader), SEEK_SET) != 0)
    return fail(Err, "trace file seek failed");
  ReadSoFar = 0;
  return true;
}

size_t TraceFileReader::read(TraceRecord *Out, size_t Max) {
  if (!File || ReadSoFar >= Header.RecordCount)
    return 0;
  uint64_t Left = Header.RecordCount - ReadSoFar;
  size_t Want = Max < Left ? Max : static_cast<size_t>(Left);
  size_t Got = std::fread(Out, sizeof(TraceRecord), Want, File);
  ReadSoFar += Got;
  return Got;
}
