//===- Format.h - Tiny string formatting helpers ----------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus a few string utilities used
/// across the project. Library code avoids iostreams entirely.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SUPPORT_FORMAT_H
#define ASYNCG_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>
#include <vector>

namespace asyncg {

/// Formats \p Fmt with printf semantics and returns the result as a string.
std::string strFormat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list variant of strFormat.
std::string strFormatV(const char *Fmt, va_list Args);

/// Joins \p Parts with \p Sep.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep);

/// Escapes a string for embedding in a double-quoted JSON or DOT literal.
std::string escapeString(std::string_view S);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Returns true if \p S ends with \p Suffix.
bool endsWith(const std::string &S, const std::string &Suffix);

/// Splits \p S on the single-character separator \p Sep. Keeps empty fields.
std::vector<std::string> splitString(const std::string &S, char Sep);

/// Formats a double with trailing-zero trimming ("1.5", "3", "0.25").
std::string formatNumber(double V);

} // namespace asyncg

#endif // ASYNCG_SUPPORT_FORMAT_H
