//===- Statistic.h - Named counters and simple stats ------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters used by the instrumentation analyses and the benchmark
/// harnesses (e.g. per-API callback execution counts for Fig. 6(b)).
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SUPPORT_STATISTIC_H
#define ASYNCG_SUPPORT_STATISTIC_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace asyncg {

/// A bag of named integer counters with deterministic (sorted) iteration.
class StatisticSet {
public:
  /// Adds \p Delta to the counter named \p Name (creating it at zero).
  void add(const std::string &Name, int64_t Delta = 1) {
    Counters[Name] += Delta;
  }

  /// Returns the counter value, or 0 when absent.
  int64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  bool empty() const { return Counters.empty(); }
  void clear() { Counters.clear(); }

  const std::map<std::string, int64_t> &all() const { return Counters; }

  /// Renders "name=value" lines, one per counter.
  std::string str() const;

private:
  std::map<std::string, int64_t> Counters;
};

/// Accumulates samples of a scalar and reports count/mean/min/max.
class RunningStat {
public:
  void sample(double V) {
    if (Count == 0 || V < Min)
      Min = V;
    if (Count == 0 || V > Max)
      Max = V;
    Sum += V;
    ++Count;
  }

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double mean() const { return Count == 0 ? 0.0 : Sum / Count; }
  double min() const { return Count == 0 ? 0.0 : Min; }
  double max() const { return Count == 0 ? 0.0 : Max; }

private:
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

} // namespace asyncg

#endif // ASYNCG_SUPPORT_STATISTIC_H
