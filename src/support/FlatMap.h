//===- FlatMap.h - Open-addressing hash map ---------------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat open-addressing hash map for the graph-index hot path. The
/// Async Graph keeps four id→node indices that are hit on every node
/// insertion and every CE-to-CR match; std::map costs one allocation plus
/// an O(log n) pointer chase per operation, while this map is a single
/// probe over contiguous storage.
///
/// Design: power-of-two capacity, linear probing, backward-shift deletion
/// (no tombstones, so probe chains never degrade), max load factor 0.75.
/// Integral keys are scrambled with a splitmix64 finalizer because the
/// runtime hands out sequential ids.
///
/// The iterator yields std::pair<K,V>&, so structured bindings written for
/// std::map keep working. Iteration order is unspecified.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SUPPORT_FLATMAP_H
#define ASYNCG_SUPPORT_FLATMAP_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace asyncg {

/// Default hash: splitmix64 finalizer for integral keys, std::hash
/// otherwise.
template <typename K> struct FlatHash {
  size_t operator()(const K &Key) const {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      uint64_t H = static_cast<uint64_t>(Key);
      H ^= H >> 30;
      H *= 0xbf58476d1ce4e5b9ull;
      H ^= H >> 27;
      H *= 0x94d049bb133111ebull;
      H ^= H >> 31;
      return static_cast<size_t>(H);
    } else {
      return std::hash<K>()(Key);
    }
  }
};

template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap {
public:
  using value_type = std::pair<K, V>;

  FlatMap() = default;

  FlatMap(const FlatMap &) = default;
  FlatMap(FlatMap &&) = default;
  FlatMap &operator=(const FlatMap &) = default;
  FlatMap &operator=(FlatMap &&) = default;

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  size_t capacity() const { return Slots.size(); }

  void clear() {
    Slots.clear();
    Used.clear();
    Count = 0;
    Mask = 0;
  }

  /// Pre-sizes the table for \p N elements without rehashing on the way.
  void reserve(size_t N) {
    size_t Want = capacityFor(N);
    if (Want > Slots.size())
      rehash(Want);
  }

  /// Returns a pointer to the mapped value, or nullptr.
  V *find(const K &Key) {
    if (Count == 0)
      return nullptr;
    size_t I = findSlot(Key);
    return I != NPos ? &Slots[I].second : nullptr;
  }
  const V *find(const K &Key) const {
    return const_cast<FlatMap *>(this)->find(Key);
  }

  bool contains(const K &Key) const { return find(Key) != nullptr; }

  /// Inserts a default-constructed value if the key is absent.
  V &operator[](const K &Key) {
    if (needsGrow())
      rehash(Slots.empty() ? MinCapacity : Slots.size() * 2);
    size_t I = probeFor(Key);
    if (!Used[I]) {
      Slots[I].first = Key;
      Slots[I].second = V();
      Used[I] = 1;
      ++Count;
    }
    return Slots[I].second;
  }

  /// Removes \p Key; returns true if it was present. Backward-shift
  /// deletion keeps probe chains compact without tombstones.
  bool erase(const K &Key) {
    if (Count == 0)
      return false;
    size_t I = findSlot(Key);
    if (I == NPos)
      return false;
    // Backward-shift: scan the rest of the probe cluster; an entry may
    // fill the hole only when the hole lies on its probe path (its home
    // slot is cyclically outside (Hole, J]). Entries that can't move are
    // skipped, not stopped at — later entries may still need the hole.
    size_t Hole = I;
    size_t J = I;
    while (true) {
      J = (J + 1) & Mask;
      if (!Used[J])
        break;
      size_t Home = Hasher(Slots[J].first) & Mask;
      bool Movable = (J > Hole) ? (Home <= Hole || Home > J)
                                : (Home <= Hole && Home > J);
      if (Movable) {
        Slots[Hole] = std::move(Slots[J]);
        Hole = J;
      }
    }
    Used[Hole] = 0;
    Slots[Hole].second = V();
    --Count;
    return true;
  }

  /// Bytes held by the backing arrays.
  size_t memoryUsage() const {
    return Slots.capacity() * sizeof(value_type) + Used.capacity();
  }

  class iterator {
  public:
    iterator(FlatMap *M, size_t I) : Map(M), Idx(I) { skip(); }
    value_type &operator*() const { return Map->Slots[Idx]; }
    value_type *operator->() const { return &Map->Slots[Idx]; }
    iterator &operator++() {
      ++Idx;
      skip();
      return *this;
    }
    bool operator==(const iterator &O) const { return Idx == O.Idx; }
    bool operator!=(const iterator &O) const { return Idx != O.Idx; }

  private:
    void skip() {
      while (Idx < Map->Slots.size() && !Map->Used[Idx])
        ++Idx;
    }
    FlatMap *Map;
    size_t Idx;
  };

  class const_iterator {
  public:
    const_iterator(const FlatMap *M, size_t I) : Map(M), Idx(I) { skip(); }
    const value_type &operator*() const { return Map->Slots[Idx]; }
    const value_type *operator->() const { return &Map->Slots[Idx]; }
    const_iterator &operator++() {
      ++Idx;
      skip();
      return *this;
    }
    bool operator==(const const_iterator &O) const { return Idx == O.Idx; }
    bool operator!=(const const_iterator &O) const { return Idx != O.Idx; }

  private:
    void skip() {
      while (Idx < Map->Slots.size() && !Map->Used[Idx])
        ++Idx;
    }
    const FlatMap *Map;
    size_t Idx;
  };

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, Slots.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, Slots.size()); }

private:
  static constexpr size_t NPos = static_cast<size_t>(-1);
  static constexpr size_t MinCapacity = 16;

  static size_t capacityFor(size_t N) {
    size_t Cap = MinCapacity;
    // Grow until N fits under the 0.75 load ceiling.
    while (N * 4 > Cap * 3)
      Cap *= 2;
    return Cap;
  }

  bool needsGrow() const {
    return Slots.empty() || (Count + 1) * 4 > Slots.size() * 3;
  }

  /// Slot of \p Key, or NPos.
  size_t findSlot(const K &Key) const {
    size_t I = Hasher(Key) & Mask;
    while (Used[I]) {
      if (Slots[I].first == Key)
        return I;
      I = (I + 1) & Mask;
    }
    return NPos;
  }

  /// Slot of \p Key, or the empty slot where it belongs.
  size_t probeFor(const K &Key) const {
    size_t I = Hasher(Key) & Mask;
    while (Used[I] && !(Slots[I].first == Key))
      I = (I + 1) & Mask;
    return I;
  }

  void rehash(size_t NewCap) {
    assert((NewCap & (NewCap - 1)) == 0 && "capacity must be a power of two");
    std::vector<value_type> OldSlots = std::move(Slots);
    std::vector<uint8_t> OldUsed = std::move(Used);
    Slots.clear();
    Slots.resize(NewCap);
    Used.assign(NewCap, 0);
    Mask = NewCap - 1;
    for (size_t I = 0; I != OldSlots.size(); ++I) {
      if (!OldUsed[I])
        continue;
      size_t J = Hasher(OldSlots[I].first) & Mask;
      while (Used[J])
        J = (J + 1) & Mask;
      Slots[J] = std::move(OldSlots[I]);
      Used[J] = 1;
    }
  }

  std::vector<value_type> Slots;
  std::vector<uint8_t> Used;
  size_t Count = 0;
  size_t Mask = 0;
  [[no_unique_address]] Hash Hasher;
};

} // namespace asyncg

#endif // ASYNCG_SUPPORT_FLATMAP_H
