//===- JsonWriter.h - Streaming JSON emitter --------------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer used to dump Async Graphs in the log format
/// consumed by the paper artifact's visualization website. The writer builds
/// into a std::string; callers decide where the bytes go.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SUPPORT_JSONWRITER_H
#define ASYNCG_SUPPORT_JSONWRITER_H

#include "support/SymbolTable.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace asyncg {

/// Streaming JSON writer. Usage:
/// \code
///   JsonWriter W;
///   W.beginObject();
///   W.key("ticks");
///   W.beginArray();
///   ...
///   W.endArray();
///   W.endObject();
///   std::string S = W.take();
/// \endcode
/// The writer asserts on malformed sequences (e.g. a value without a key
/// inside an object).
class JsonWriter {
public:
  JsonWriter() = default;

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Emits an object key; must be inside an object and followed by a value.
  void key(const std::string &K);

  void value(const std::string &V);
  void value(std::string_view V);
  void value(const char *V);
  void value(Symbol V) { value(V.view()); }
  void value(double V);
  void value(int64_t V);
  void value(uint64_t V);
  void value(int V) { value(static_cast<int64_t>(V)); }
  void value(unsigned V) { value(static_cast<uint64_t>(V)); }
  void value(bool V);
  void nullValue();

  /// Convenience: key + value in one call.
  template <typename T> void field(const std::string &K, const T &V) {
    key(K);
    value(V);
  }

  /// Returns the accumulated JSON text and resets the writer.
  std::string take();

  /// Returns the accumulated JSON text without resetting.
  const std::string &str() const { return Out; }

private:
  enum class ScopeKind { Object, Array };
  struct Scope {
    ScopeKind Kind;
    bool SawElement = false;
  };

  void beforeValue();
  void raw(const std::string &S) { Out += S; }

  std::string Out;
  std::vector<Scope> Scopes;
  bool PendingKey = false;
};

} // namespace asyncg

#endif // ASYNCG_SUPPORT_JSONWRITER_H
