//===- SymbolTable.h - Arena-backed string interning ------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String interning for the instrumentation hot path. Node labels, event
/// names, and edge labels repeat endlessly while the Async Graph is built
/// (every 'data' listener registration carries the string "data"); storing
/// a 4-byte SymbolId instead of a std::string removes the per-node heap
/// traffic and turns label equality into an integer compare.
///
/// - SymbolTable: append-only arena of null-terminated strings plus an
///   open-addressing lookup table. Interning an already-known string is a
///   hash probe with no allocation; id 0 is always the empty string.
/// - Symbol: a value type wrapping a SymbolId. It converts implicitly from
///   const char* / std::string / std::string_view (interning on
///   construction) so existing assignment sites keep compiling, and
///   resolves back to text only at serialization time via str()/c_str().
///
/// The table is a process-wide singleton (symtab()). Since the async
/// instrumentation pipeline (ag/AsyncPipeline.h) resolves and interns
/// symbols from its builder thread while the event loop keeps interning,
/// the table is thread-safe: intern() probes the published lookup table
/// lock-free (slots only ever transition empty -> occupied and entries are
/// immutable, so a hit is authoritative) and takes the mutex only to insert
/// a string it has not seen; view()/c_str() are lock-free — entries live in
/// fixed-size pages whose pointers are published with release ordering and
/// never move, and the arena never moves strings. Retired lookup tables are
/// kept alive after growth so a concurrent reader never touches freed
/// memory. A reader may only resolve ids it legitimately obtained (program
/// order, or a release/acquire hand-off such as the SPSC event ring), which
/// is exactly how Symbols travel between threads.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SUPPORT_SYMBOLTABLE_H
#define ASYNCG_SUPPORT_SYMBOLTABLE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace asyncg {

/// Index into the global symbol table. 0 is the empty string.
using SymbolId = uint32_t;

/// Arena-backed intern pool. Strings are stored null-terminated, so
/// resolving to a C string is free.
class SymbolTable {
public:
  SymbolTable();

  /// Interns \p S, returning its stable id. Idempotent: the same bytes
  /// always produce the same id for the lifetime of the table. Safe to
  /// call from any thread: already-interned strings resolve with a
  /// lock-free probe; only first-time inserts take the internal mutex.
  SymbolId intern(std::string_view S);

  /// Resolves an id to its text. The view stays valid for the lifetime of
  /// the table (the arena never moves strings). Lock-free; safe
  /// concurrently with intern() for any id the caller properly obtained.
  std::string_view view(SymbolId Id) const {
    const Entry &E = entry(Id);
    return std::string_view(E.Ptr, E.Len);
  }

  /// Null-terminated resolution.
  const char *c_str(SymbolId Id) const { return entry(Id).Ptr; }

  /// Number of distinct interned strings (including the empty string).
  size_t size() const { return EntryCount.load(std::memory_order_acquire); }

  /// Bytes held by the arena, the entry pages, and the hash table.
  size_t memoryUsage() const;

  /// The process-wide table used by Symbol.
  static SymbolTable &global();

private:
  struct Entry {
    const char *Ptr;
    uint32_t Len;
    uint64_t Hash;
  };

  /// Entries are stored in fixed-size pages so resolution never races with
  /// growth: a page pointer is published once (release) and its slots are
  /// written before the entry's id escapes the interning thread.
  static constexpr size_t PageBits = 12;
  static constexpr size_t PageSize = size_t(1) << PageBits;
  static constexpr size_t MaxPages = size_t(1) << 12; ///< 16M symbols.

  const Entry &entry(SymbolId Id) const {
    const Entry *Page =
        Pages[Id >> PageBits].load(std::memory_order_acquire);
    return Page[Id & (PageSize - 1)];
  }

  /// Open-addressing table of entry indices + 1 (0 = empty slot). Slots
  /// are atomics because the fast path of intern() probes the current
  /// table without the mutex: a slot is written exactly once (release,
  /// after its Entry is fully published), so an acquire load either sees
  /// 0 (treat as miss, fall back to the mutex) or a valid, immutable
  /// entry index.
  struct LookupTable {
    explicit LookupTable(size_t N)
        : Mask(N - 1), Slots(std::make_unique<std::atomic<uint32_t>[]>(N)) {}
    size_t Mask;
    std::unique_ptr<std::atomic<uint32_t>[]> Slots;
  };

  const char *arenaStore(std::string_view S);
  void grow();

  static constexpr size_t ChunkSize = 64 * 1024;

  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<char[]>> Chunks;
  /// Strings larger than ChunkSize get dedicated allocations.
  std::vector<std::unique_ptr<char[]>> BigChunks;
  size_t ChunkUsed = 0;
  size_t OversizedBytes = 0;
  std::array<std::atomic<Entry *>, MaxPages> Pages{};
  std::vector<std::unique_ptr<Entry[]>> PageStore;
  std::atomic<uint32_t> EntryCount{0};
  /// Currently published lookup table; replaced wholesale on growth.
  std::atomic<LookupTable *> Table{nullptr};
  /// Owns every table ever published (current one last). Retired tables
  /// stay alive so lock-free probes racing a grow() never see freed
  /// memory; their cost is negligible (a geometric series below the
  /// final table's size).
  std::vector<std::unique_ptr<LookupTable>> TableStore;
};

/// Returns the global symbol table.
inline SymbolTable &symtab() { return SymbolTable::global(); }

/// An interned string value. 8x smaller than std::string and trivially
/// copyable; comparisons between Symbols are integer compares.
class Symbol {
public:
  constexpr Symbol() = default;
  Symbol(const char *S) : Id(symtab().intern(S)) {}
  Symbol(const std::string &S) : Id(symtab().intern(S)) {}
  Symbol(std::string_view S) : Id(symtab().intern(S)) {}

  /// Wraps an id previously obtained from the table without re-hashing.
  static constexpr Symbol fromId(SymbolId Id) {
    Symbol S;
    S.Id = Id;
    return S;
  }

  constexpr SymbolId id() const { return Id; }
  constexpr bool empty() const { return Id == 0; }

  std::string_view view() const { return symtab().view(Id); }
  const char *c_str() const { return symtab().c_str(Id); }
  std::string str() const { return std::string(view()); }
  size_t size() const { return view().size(); }

  friend constexpr bool operator==(Symbol A, Symbol B) {
    return A.Id == B.Id;
  }
  friend constexpr bool operator!=(Symbol A, Symbol B) {
    return A.Id != B.Id;
  }
  /// Orders by id: arbitrary but stable, good enough for map keys.
  friend constexpr bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

  /// Text comparison against strings that may not be interned (does not
  /// mutate the table). The const char* / std::string overloads exist so
  /// these comparisons don't ambiguously match both the implicit Symbol
  /// conversion and the string_view one.
  friend bool operator==(Symbol A, std::string_view S) {
    return A.view() == S;
  }
  friend bool operator==(std::string_view S, Symbol A) {
    return A.view() == S;
  }
  friend bool operator!=(Symbol A, std::string_view S) {
    return A.view() != S;
  }
  friend bool operator!=(std::string_view S, Symbol A) {
    return A.view() != S;
  }
  friend bool operator==(Symbol A, const char *S) {
    return A.view() == std::string_view(S);
  }
  friend bool operator==(const char *S, Symbol A) {
    return A.view() == std::string_view(S);
  }
  friend bool operator!=(Symbol A, const char *S) {
    return A.view() != std::string_view(S);
  }
  friend bool operator!=(const char *S, Symbol A) {
    return A.view() != std::string_view(S);
  }
  friend bool operator==(Symbol A, const std::string &S) {
    return A.view() == std::string_view(S);
  }
  friend bool operator==(const std::string &S, Symbol A) {
    return A.view() == std::string_view(S);
  }
  friend bool operator!=(Symbol A, const std::string &S) {
    return A.view() != std::string_view(S);
  }
  friend bool operator!=(const std::string &S, Symbol A) {
    return A.view() != std::string_view(S);
  }

private:
  SymbolId Id = 0;
};

/// gtest / logging support.
inline std::ostream &operator<<(std::ostream &OS, Symbol S) {
  return OS << S.view();
}

} // namespace asyncg

#endif // ASYNCG_SUPPORT_SYMBOLTABLE_H
