//===- JsonWriter.cpp - Streaming JSON emitter -----------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/JsonWriter.h"

#include "support/Format.h"

#include <cassert>
#include <cmath>

using namespace asyncg;

void JsonWriter::beforeValue() {
  if (Scopes.empty())
    return;
  Scope &S = Scopes.back();
  if (S.Kind == ScopeKind::Object) {
    assert(PendingKey && "object value requires a preceding key");
    PendingKey = false;
    return;
  }
  if (S.SawElement)
    raw(",");
  S.SawElement = true;
}

void JsonWriter::beginObject() {
  beforeValue();
  raw("{");
  Scopes.push_back({ScopeKind::Object, false});
}

void JsonWriter::endObject() {
  assert(!Scopes.empty() && Scopes.back().Kind == ScopeKind::Object &&
         "mismatched endObject");
  assert(!PendingKey && "dangling key at endObject");
  Scopes.pop_back();
  raw("}");
}

void JsonWriter::beginArray() {
  beforeValue();
  raw("[");
  Scopes.push_back({ScopeKind::Array, false});
}

void JsonWriter::endArray() {
  assert(!Scopes.empty() && Scopes.back().Kind == ScopeKind::Array &&
         "mismatched endArray");
  Scopes.pop_back();
  raw("]");
}

void JsonWriter::key(const std::string &K) {
  assert(!Scopes.empty() && Scopes.back().Kind == ScopeKind::Object &&
         "key outside of object");
  assert(!PendingKey && "two keys in a row");
  Scope &S = Scopes.back();
  if (S.SawElement)
    raw(",");
  S.SawElement = true;
  raw("\"");
  raw(escapeString(K));
  raw("\":");
  PendingKey = true;
}

void JsonWriter::value(const std::string &V) {
  beforeValue();
  raw("\"");
  raw(escapeString(V));
  raw("\"");
}

void JsonWriter::value(std::string_view V) {
  beforeValue();
  raw("\"");
  raw(escapeString(V));
  raw("\"");
}

void JsonWriter::value(const char *V) { value(std::string_view(V)); }

void JsonWriter::value(double V) {
  beforeValue();
  if (std::isnan(V) || std::isinf(V)) {
    raw("null");
    return;
  }
  raw(formatNumber(V));
}

void JsonWriter::value(int64_t V) {
  beforeValue();
  raw(strFormat("%lld", static_cast<long long>(V)));
}

void JsonWriter::value(uint64_t V) {
  beforeValue();
  raw(strFormat("%llu", static_cast<unsigned long long>(V)));
}

void JsonWriter::value(bool V) {
  beforeValue();
  raw(V ? "true" : "false");
}

void JsonWriter::nullValue() {
  beforeValue();
  raw("null");
}

std::string JsonWriter::take() {
  assert(Scopes.empty() && "taking JSON with open scopes");
  std::string Result = std::move(Out);
  Out.clear();
  return Result;
}
