//===- SymbolTable.cpp - Arena-backed string interning ------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/SymbolTable.h"

#include <cassert>
#include <cstring>

using namespace asyncg;

static uint64_t hashBytes(std::string_view S) {
  // FNV-1a, then a splitmix64-style finalizer so short strings spread over
  // the power-of-two table.
  uint64_t H = 1469598103934665603ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  H ^= H >> 30;
  H *= 0xbf58476d1ce4e5b9ull;
  H ^= H >> 27;
  return H;
}

SymbolTable::SymbolTable() {
  Lookup.resize(256, 0);
  LookupMask = Lookup.size() - 1;
  // Id 0 is the empty string, always present.
  [[maybe_unused]] SymbolId Empty = intern(std::string_view());
  assert(Empty == 0 && "empty string must get id 0");
}

SymbolTable &SymbolTable::global() {
  static SymbolTable Table;
  return Table;
}

const char *SymbolTable::arenaStore(std::string_view S) {
  size_t Need = S.size() + 1;
  if (Need > ChunkSize) {
    // Oversized string: dedicated allocation so the regular chunks stay
    // fixed-size (and the active tail chunk keeps its remaining space).
    BigChunks.push_back(std::make_unique<char[]>(Need));
    char *Dst = BigChunks.back().get();
    std::memcpy(Dst, S.data(), S.size());
    Dst[S.size()] = '\0';
    OversizedBytes += Need;
    return Dst;
  }
  if (Chunks.empty() || ChunkUsed + Need > ChunkSize) {
    Chunks.push_back(std::make_unique<char[]>(ChunkSize));
    ChunkUsed = 0;
  }
  char *Dst = Chunks.back().get() + ChunkUsed;
  if (!S.empty())
    std::memcpy(Dst, S.data(), S.size());
  Dst[S.size()] = '\0';
  ChunkUsed += Need;
  return Dst;
}

void SymbolTable::grow() {
  std::vector<uint32_t> Old = std::move(Lookup);
  Lookup.assign(Old.size() * 2, 0);
  LookupMask = Lookup.size() - 1;
  for (uint32_t Slot : Old) {
    if (Slot == 0)
      continue;
    size_t I = entry(Slot - 1).Hash & LookupMask;
    while (Lookup[I] != 0)
      I = (I + 1) & LookupMask;
    Lookup[I] = Slot;
  }
}

SymbolId SymbolTable::intern(std::string_view S) {
  uint64_t H = hashBytes(S);
  std::lock_guard<std::mutex> Guard(Mutex);
  size_t I = H & LookupMask;
  while (true) {
    uint32_t Slot = Lookup[I];
    if (Slot == 0)
      break;
    const Entry &E = entry(Slot - 1);
    if (E.Hash == H && E.Len == S.size() &&
        (S.empty() || std::memcmp(E.Ptr, S.data(), S.size()) == 0))
      return Slot - 1;
    I = (I + 1) & LookupMask;
  }

  uint32_t Count = EntryCount.load(std::memory_order_relaxed);

  // Keep the load factor under 1/2.
  if ((size_t(Count) + 1) * 2 > Lookup.size()) {
    grow();
    I = H & LookupMask;
    while (Lookup[I] != 0)
      I = (I + 1) & LookupMask;
  }

  SymbolId Id = Count;
  size_t PageIdx = Id >> PageBits;
  assert(PageIdx < MaxPages && "symbol table page limit exceeded");
  Entry *Page = Pages[PageIdx].load(std::memory_order_relaxed);
  if (!Page) {
    PageStore.push_back(std::make_unique<Entry[]>(PageSize));
    Page = PageStore.back().get();
    // Publish the page before any id pointing into it can escape.
    Pages[PageIdx].store(Page, std::memory_order_release);
  }
  Page[Id & (PageSize - 1)] =
      Entry{arenaStore(S), static_cast<uint32_t>(S.size()), H};
  // Publish the entry after its slot is fully written.
  EntryCount.store(Count + 1, std::memory_order_release);
  Lookup[I] = Id + 1;
  return Id;
}

size_t SymbolTable::memoryUsage() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Chunks.size() * ChunkSize + OversizedBytes +
         PageStore.size() * PageSize * sizeof(Entry) +
         Lookup.capacity() * sizeof(uint32_t);
}
