//===- SymbolTable.cpp - Arena-backed string interning ------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/SymbolTable.h"

#include <cassert>
#include <cstring>

using namespace asyncg;

static uint64_t hashBytes(std::string_view S) {
  // FNV-1a, then a splitmix64-style finalizer so short strings spread over
  // the power-of-two table.
  uint64_t H = 1469598103934665603ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  H ^= H >> 30;
  H *= 0xbf58476d1ce4e5b9ull;
  H ^= H >> 27;
  return H;
}

SymbolTable::SymbolTable() {
  TableStore.push_back(std::make_unique<LookupTable>(256));
  for (size_t I = 0; I <= TableStore.back()->Mask; ++I)
    TableStore.back()->Slots[I].store(0, std::memory_order_relaxed);
  Table.store(TableStore.back().get(), std::memory_order_release);
  // Id 0 is the empty string, always present.
  [[maybe_unused]] SymbolId Empty = intern(std::string_view());
  assert(Empty == 0 && "empty string must get id 0");
}

SymbolTable &SymbolTable::global() {
  static SymbolTable Table;
  return Table;
}

const char *SymbolTable::arenaStore(std::string_view S) {
  size_t Need = S.size() + 1;
  if (Need > ChunkSize) {
    // Oversized string: dedicated allocation so the regular chunks stay
    // fixed-size (and the active tail chunk keeps its remaining space).
    BigChunks.push_back(std::make_unique<char[]>(Need));
    char *Dst = BigChunks.back().get();
    std::memcpy(Dst, S.data(), S.size());
    Dst[S.size()] = '\0';
    OversizedBytes += Need;
    return Dst;
  }
  if (Chunks.empty() || ChunkUsed + Need > ChunkSize) {
    Chunks.push_back(std::make_unique<char[]>(ChunkSize));
    ChunkUsed = 0;
  }
  char *Dst = Chunks.back().get() + ChunkUsed;
  if (!S.empty())
    std::memcpy(Dst, S.data(), S.size());
  Dst[S.size()] = '\0';
  ChunkUsed += Need;
  return Dst;
}

void SymbolTable::grow() {
  LookupTable *Old = Table.load(std::memory_order_relaxed);
  auto Next = std::make_unique<LookupTable>((Old->Mask + 1) * 2);
  // The new table is private until the release store below, so relaxed
  // stores suffice while rehashing into it.
  for (size_t I = 0; I <= Next->Mask; ++I)
    Next->Slots[I].store(0, std::memory_order_relaxed);
  for (size_t I = 0; I <= Old->Mask; ++I) {
    uint32_t Slot = Old->Slots[I].load(std::memory_order_relaxed);
    if (Slot == 0)
      continue;
    size_t J = entry(Slot - 1).Hash & Next->Mask;
    while (Next->Slots[J].load(std::memory_order_relaxed) != 0)
      J = (J + 1) & Next->Mask;
    Next->Slots[J].store(Slot, std::memory_order_relaxed);
  }
  // Publish; the old table stays alive in TableStore for concurrent
  // lock-free probes that loaded it before the swap. They can at worst
  // miss a fresh entry and fall back to the mutex path.
  Table.store(Next.get(), std::memory_order_release);
  TableStore.push_back(std::move(Next));
}

SymbolId SymbolTable::intern(std::string_view S) {
  uint64_t H = hashBytes(S);
  // Lock-free fast path: probe the published table. Slots go empty ->
  // occupied exactly once and entries never change, so a hit here is
  // authoritative; a miss (including a stale table during growth) just
  // falls through to the serialized insert, which re-probes.
  {
    const LookupTable *T = Table.load(std::memory_order_acquire);
    size_t I = H & T->Mask;
    while (true) {
      uint32_t Slot = T->Slots[I].load(std::memory_order_acquire);
      if (Slot == 0)
        break;
      const Entry &E = entry(Slot - 1);
      if (E.Hash == H && E.Len == S.size() &&
          (S.empty() || std::memcmp(E.Ptr, S.data(), S.size()) == 0))
        return Slot - 1;
      I = (I + 1) & T->Mask;
    }
  }

  std::lock_guard<std::mutex> Guard(Mutex);
  LookupTable *T = Table.load(std::memory_order_relaxed);
  size_t I = H & T->Mask;
  while (true) {
    uint32_t Slot = T->Slots[I].load(std::memory_order_relaxed);
    if (Slot == 0)
      break;
    const Entry &E = entry(Slot - 1);
    if (E.Hash == H && E.Len == S.size() &&
        (S.empty() || std::memcmp(E.Ptr, S.data(), S.size()) == 0))
      return Slot - 1;
    I = (I + 1) & T->Mask;
  }

  uint32_t Count = EntryCount.load(std::memory_order_relaxed);

  // Keep the load factor under 1/2.
  if ((size_t(Count) + 1) * 2 > T->Mask + 1) {
    grow();
    T = Table.load(std::memory_order_relaxed);
    I = H & T->Mask;
    while (T->Slots[I].load(std::memory_order_relaxed) != 0)
      I = (I + 1) & T->Mask;
  }

  SymbolId Id = Count;
  size_t PageIdx = Id >> PageBits;
  assert(PageIdx < MaxPages && "symbol table page limit exceeded");
  Entry *Page = Pages[PageIdx].load(std::memory_order_relaxed);
  if (!Page) {
    PageStore.push_back(std::make_unique<Entry[]>(PageSize));
    Page = PageStore.back().get();
    // Publish the page before any id pointing into it can escape.
    Pages[PageIdx].store(Page, std::memory_order_release);
  }
  Page[Id & (PageSize - 1)] =
      Entry{arenaStore(S), static_cast<uint32_t>(S.size()), H};
  EntryCount.store(Count + 1, std::memory_order_release);
  // Publish the slot only after its Entry is fully written: a lock-free
  // prober acquire-loading this slot must see a complete entry.
  T->Slots[I].store(Id + 1, std::memory_order_release);
  return Id;
}

size_t SymbolTable::memoryUsage() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  size_t TableBytes = 0;
  for (const auto &T : TableStore)
    TableBytes += (T->Mask + 1) * sizeof(std::atomic<uint32_t>);
  return Chunks.size() * ChunkSize + OversizedBytes +
         PageStore.size() * PageSize * sizeof(Entry) + TableBytes;
}
