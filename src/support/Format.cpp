//===- Format.cpp - Tiny string formatting helpers ------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace asyncg;

std::string asyncg::strFormatV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  return Out;
}

std::string asyncg::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Out = strFormatV(Fmt, Args);
  va_end(Args);
  return Out;
}

std::string asyncg::joinStrings(const std::vector<std::string> &Parts,
                                const std::string &Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string asyncg::escapeString(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

bool asyncg::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

bool asyncg::endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::vector<std::string> asyncg::splitString(const std::string &S, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string::npos) {
      Parts.push_back(S.substr(Start));
      return Parts;
    }
    Parts.push_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string asyncg::formatNumber(double V) {
  if (std::isnan(V))
    return "NaN";
  if (std::isinf(V))
    return V > 0 ? "Infinity" : "-Infinity";
  if (V == static_cast<double>(static_cast<long long>(V)) &&
      std::fabs(V) < 1e15)
    return strFormat("%lld", static_cast<long long>(V));
  std::string Out = strFormat("%.6f", V);
  // Trim trailing zeros but keep at least one digit after the point.
  while (endsWith(Out, "0"))
    Out.pop_back();
  if (endsWith(Out, "."))
    Out.pop_back();
  return Out;
}
