//===- Statistic.cpp - Named counters and simple stats ---------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

#include "support/Format.h"

using namespace asyncg;

std::string StatisticSet::str() const {
  std::string Out;
  for (const auto &[Name, Value] : Counters)
    Out += strFormat("%s=%lld\n", Name.c_str(),
                     static_cast<long long>(Value));
  return Out;
}
