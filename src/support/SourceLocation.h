//===- SourceLocation.h - Source positions for callbacks -------*- C++ -*-===//
//
// Part of AsyncG-C++, a reproduction of "Reasoning about the Node.js Event
// Loop using Async Graphs" (CGO 2019). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations attached to callbacks and API call sites. In the paper,
/// every Async Graph node is mapped to the originating code location; in this
/// reproduction the "JavaScript" programs are C++ programs against the jsrt
/// API, so locations either come from the C++ file (via JSLOC) or are given
/// explicitly to mirror the line numbers of the paper's code snippets.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SUPPORT_SOURCELOCATION_H
#define ASYNCG_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace asyncg {

/// A file/line pair identifying where a callback was defined or an
/// asynchronous API was called. Internal (builtin) library code uses the
/// pseudo-file "*", matching the paper's notation for internal libraries.
class SourceLocation {
public:
  SourceLocation() = default;
  SourceLocation(std::string File, uint32_t Line)
      : File(std::move(File)), Line(Line) {}

  /// The location used for Node.js-internal library code ("*" in the paper).
  static SourceLocation internal() { return SourceLocation("*", 0); }

  bool isValid() const { return !File.empty(); }
  bool isInternal() const { return File == "*"; }

  const std::string &file() const { return File; }
  uint32_t line() const { return Line; }

  /// Renders "file:line", "*" for internal code, or "<unknown>".
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    if (isInternal())
      return "*";
    return File + ":" + std::to_string(Line);
  }

  /// Renders the short "L<line>" form used for node names in the paper's
  /// figures (e.g. "L7"), or "*" for internal locations.
  std::string shortStr() const {
    if (!isValid())
      return "L?";
    if (isInternal())
      return "*";
    return "L" + std::to_string(Line);
  }

  bool operator==(const SourceLocation &RHS) const {
    return File == RHS.File && Line == RHS.Line;
  }
  bool operator!=(const SourceLocation &RHS) const { return !(*this == RHS); }

private:
  std::string File;
  uint32_t Line = 0;
};

} // namespace asyncg

/// Captures the current C++ source position as a jsrt source location.
#define JSLOC ::asyncg::SourceLocation(__FILE__, __LINE__)

/// Declares a pseudo "JavaScript" location with an explicit line number.
/// Case programs use this to keep the line numbers of the paper's snippets.
#define JSLINE(FileStr, LineNo) ::asyncg::SourceLocation((FileStr), (LineNo))

#endif // ASYNCG_SUPPORT_SOURCELOCATION_H
