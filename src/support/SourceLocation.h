//===- SourceLocation.h - Source positions for callbacks -------*- C++ -*-===//
//
// Part of AsyncG-C++, a reproduction of "Reasoning about the Node.js Event
// Loop using Async Graphs" (CGO 2019). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations attached to callbacks and API call sites. In the paper,
/// every Async Graph node is mapped to the originating code location; in this
/// reproduction the "JavaScript" programs are C++ programs against the jsrt
/// API, so locations either come from the C++ file (via JSLOC) or are given
/// explicitly to mirror the line numbers of the paper's code snippets.
///
/// The file name is an interned Symbol: a SourceLocation is 8 bytes and
/// trivially copyable, so stamping one on every graph node costs nothing.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SUPPORT_SOURCELOCATION_H
#define ASYNCG_SUPPORT_SOURCELOCATION_H

#include "support/SymbolTable.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace asyncg {

/// A file/line pair identifying where a callback was defined or an
/// asynchronous API was called. Internal (builtin) library code uses the
/// pseudo-file "*", matching the paper's notation for internal libraries.
class SourceLocation {
public:
  SourceLocation() = default;
  SourceLocation(Symbol File, uint32_t Line) : File(File), Line_(Line) {}
  SourceLocation(std::string_view File, uint32_t Line)
      : File(File), Line_(Line) {}
  SourceLocation(const char *File, uint32_t Line) : File(File), Line_(Line) {}
  SourceLocation(const std::string &File, uint32_t Line)
      : File(File), Line_(Line) {}

  /// The location used for Node.js-internal library code ("*" in the paper).
  static SourceLocation internal() { return SourceLocation("*", 0); }

  bool isValid() const { return !File.empty(); }
  bool isInternal() const {
    return File.id() == internalFileSymbol().id();
  }

  std::string_view file() const { return File.view(); }
  Symbol fileSymbol() const { return File; }
  uint32_t line() const { return Line_; }

  /// Renders "file:line", "*" for internal code, or "<unknown>".
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    if (isInternal())
      return "*";
    std::string S(File.view());
    S += ":";
    S += std::to_string(Line_);
    return S;
  }

  /// Renders the short "L<line>" form used for node names in the paper's
  /// figures (e.g. "L7"), or "*" for internal locations.
  std::string shortStr() const {
    std::string S;
    appendShort(S);
    return S;
  }

  /// Appends the shortStr() form to \p Out without a temporary.
  void appendShort(std::string &Out) const {
    if (!isValid()) {
      Out += "L?";
      return;
    }
    if (isInternal()) {
      Out += '*';
      return;
    }
    Out += 'L';
    Out += std::to_string(Line_);
  }

  bool operator==(const SourceLocation &RHS) const {
    return File == RHS.File && Line_ == RHS.Line_;
  }
  bool operator!=(const SourceLocation &RHS) const { return !(*this == RHS); }

private:
  static Symbol internalFileSymbol() {
    static const Symbol Star("*");
    return Star;
  }

  Symbol File;
  uint32_t Line_ = 0;
};

} // namespace asyncg

/// Captures the current C++ source position as a jsrt source location.
#define JSLOC ::asyncg::SourceLocation(__FILE__, __LINE__)

/// Declares a pseudo "JavaScript" location with an explicit line number.
/// Case programs use this to keep the line numbers of the paper's snippets.
#define JSLINE(FileStr, LineNo) ::asyncg::SourceLocation((FileStr), (LineNo))

#endif // ASYNCG_SUPPORT_SOURCELOCATION_H
