//===- App.cpp - the AcmeAir-like flight-booking server ------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/acmeair/App.h"

#include "jsrt/Object.h"
#include "support/Format.h"

using namespace asyncg;
using namespace asyncg::acmeair;
using namespace asyncg::jsrt;
using asyncg::node::http::HttpServer;
using asyncg::node::http::IncomingMessage;
using asyncg::node::http::ServerResponse;

namespace {
constexpr const char *AppFile = "acmeair.js";
} // namespace

std::map<std::string, std::string>
asyncg::acmeair::parseForm(const std::string &S) {
  std::map<std::string, std::string> M;
  if (S.empty())
    return M;
  for (const std::string &Pair : splitString(S, '&')) {
    size_t Eq = Pair.find('=');
    if (Eq == std::string::npos)
      M[Pair] = "";
    else
      M[Pair.substr(0, Eq)] = Pair.substr(Eq + 1);
  }
  return M;
}

const std::vector<std::string> &AcmeAirApp::airports() {
  static const std::vector<std::string> A = {"SFO", "JFK", "LAX", "BOS",
                                             "CDG"};
  return A;
}

AcmeAirApp::AcmeAirApp(Runtime &RT, AppConfig Config)
    : RT(RT), Config(Config), Db(RT, Config.Mongo) {}

void AcmeAirApp::seed() {
  for (int I = 0; I < Config.Customers; ++I) {
    Value Doc = Object::make("Customer");
    std::string Id = "uid" + std::to_string(I);
    Doc.asObject()->set("_id", Value::str(Id));
    Doc.asObject()->set("password", Value::str("password"));
    Doc.asObject()->set("name", Value::str("Customer " + std::to_string(I)));
    Doc.asObject()->set("miles", Value::number(1000.0 * I));
    Db.insertSync("customers", Id, Doc);
  }
  const auto &Air = airports();
  for (const std::string &From : Air) {
    for (const std::string &To : Air) {
      if (From == To)
        continue;
      for (int F = 0; F < Config.FlightsPerRoute; ++F) {
        Value Doc = Object::make("Flight");
        std::string Key =
            From + "-" + To + "|f" + std::to_string(F);
        Doc.asObject()->set("_id", Value::str(Key));
        Doc.asObject()->set("from", Value::str(From));
        Doc.asObject()->set("to", Value::str(To));
        Doc.asObject()->set("price", Value::number(100.0 + 20.0 * F));
        Db.insertSync("flights", Key, Doc);
      }
    }
  }
}

void AcmeAirApp::finish(std::shared_ptr<ServerResponse> Res, int Status,
                        const std::string &Body) {
  Res->writeHead(Status);
  if (Res->end(Body))
    ++Served;
}

void AcmeAirApp::start(SourceLocation Loc) {
  seed();

  AcmeAirApp *App = this;
  Function OnRequest = RT.makeFunction(
      "acmeairRouter", JSLINE(AppFile, 10),
      [App](Runtime &R, const CallArgs &A) {
        auto Req = IncomingMessage::from(A.arg(0));
        auto Res = ServerResponse::from(A.arg(1));
        auto Body = std::make_shared<std::string>();

        // Accumulate the request body ('data' then 'end', as in the §II-A
        // example server).
        Function OnData = R.makeFunction(
            "onBodyChunk", JSLINE(AppFile, 12),
            [Body](Runtime &, const CallArgs &A2) {
              *Body += A2.arg(0).asString();
              return Completion::normal();
            });
        R.emitterOn(JSLINE(AppFile, 12), Req->emitter(), "data", OnData);

        Function OnEnd = R.makeFunction(
            "onBodyEnd", JSLINE(AppFile, 14),
            [App, Req, Res, Body](Runtime &R2, const CallArgs &) {
              std::string Path = Req->url();
              std::string Query;
              size_t Q = Path.find('?');
              if (Q != std::string::npos) {
                Query = Path.substr(Q + 1);
                Path = Path.substr(0, Q);
              }
              std::map<std::string, std::string> Params =
                  parseForm(Query);
              for (auto &[K, V] : parseForm(*Body))
                Params[K] = V;
              App->route(R2, Req->method(), Path, Params, Res);
              return Completion::normal();
            });
        R.emitterOn(JSLINE(AppFile, 14), Req->emitter(), "end", OnEnd);
        return Completion::normal();
      });

  Server = HttpServer::create(RT, Loc, OnRequest);
  Server->listen(JSLINE(AppFile, 18), Config.Port);
}

void AcmeAirApp::route(Runtime &R, const std::string &Method,
                       const std::string &Path,
                       const std::map<std::string, std::string> &Params,
                       std::shared_ptr<ServerResponse> Res) {
  if (Method == "POST" && Path == "/rest/api/login")
    return handleLogin(R, Params, std::move(Res));
  if (Method == "GET" && Path == "/rest/api/queryflights")
    return handleQueryFlights(R, Params, std::move(Res));
  if (Method == "POST" && Path == "/rest/api/bookflights")
    return handleBookFlights(R, Params, std::move(Res));
  if (Method == "GET" && Path == "/rest/api/customer/byid")
    return handleViewProfile(R, Params, std::move(Res));
  if (Method == "POST" && Path == "/rest/api/customer/update")
    return handleUpdateProfile(R, Params, std::move(Res));
  if (Method == "GET" && Path == "/rest/api/config/countBookings")
    return handleCountBookings(R, std::move(Res));
  finish(std::move(Res), 404, "ERR not-found");
}

static std::string param(const std::map<std::string, std::string> &P,
                         const std::string &K) {
  auto It = P.find(K);
  return It == P.end() ? std::string() : It->second;
}

//===----------------------------------------------------------------------===//
// login: look the customer up, verify the password, store a session.
//===----------------------------------------------------------------------===//

void AcmeAirApp::handleLogin(Runtime &R,
                             const std::map<std::string, std::string> &P,
                             std::shared_ptr<ServerResponse> Res) {
  std::string User = param(P, "user");
  std::string Password = param(P, "password");
  AcmeAirApp *App = this;

  auto CheckAndCreateSession = [App, User, Password,
                                Res](Runtime &R2, Value CustomerDoc) {
    if (!CustomerDoc.isObject() ||
        CustomerDoc.asObject()->get("password").asString() != Password) {
      App->finish(Res, 401, "ERR bad-credentials");
      return;
    }
    std::string Token = "s-" + User;
    Value Session = Object::make("Session");
    Session.asObject()->set("customer", Value::str(User));
    Function OnStored = R2.makeFunction(
        "onSessionStored", JSLINE(AppFile, 28),
        [App, Res, Token](Runtime &, const CallArgs &) {
          App->finish(Res, 200, "OK token=" + Token);
          return Completion::normal();
        });
    App->Db.update(JSLINE(AppFile, 28), "sessions", Token, Session,
                   OnStored);
  };

  if (Config.UsePromises) {
    PromiseRef Found =
        Db.findOneP(JSLINE(AppFile, 25), "customers", User);
    Function OnFound = R.makeFunction(
        "onCustomer", JSLINE(AppFile, 26),
        [CheckAndCreateSession](Runtime &R2, const CallArgs &A) {
          CheckAndCreateSession(R2, A.arg(0));
          return Completion::normal();
        });
    R.promiseThen(JSLINE(AppFile, 26), Found, OnFound);
    return;
  }
  Function OnFound = R.makeFunction(
      "onCustomer", JSLINE(AppFile, 26),
      [CheckAndCreateSession](Runtime &R2, const CallArgs &A) {
        CheckAndCreateSession(R2, A.arg(1));
        return Completion::normal();
      });
  Db.findOne(JSLINE(AppFile, 25), "customers", User, OnFound);
}

//===----------------------------------------------------------------------===//
// queryflights: outbound (promise interface) + return (callback interface).
//===----------------------------------------------------------------------===//

void AcmeAirApp::handleQueryFlights(
    Runtime &R, const std::map<std::string, std::string> &P,
    std::shared_ptr<ServerResponse> Res) {
  std::string From = param(P, "from");
  std::string To = param(P, "to");
  AcmeAirApp *App = this;

  auto RespondWith = [App, Res](Runtime &R2, size_t Outbound,
                                Value ReturnList) {
    (void)R2;
    size_t Ret = ReturnList.isArray() ? ReturnList.asArray()->size() : 0;
    App->finish(Res, 200,
                strFormat("OK out=%zu ret=%zu", Outbound, Ret));
  };

  auto QueryReturn = [App, From, To, RespondWith](Runtime &R2,
                                                  Value OutList) {
    size_t Outbound = OutList.isArray() ? OutList.asArray()->size() : 0;
    Function OnReturn = R2.makeFunction(
        "onReturnFlights", JSLINE(AppFile, 36),
        [RespondWith, Outbound](Runtime &R3, const CallArgs &A) {
          RespondWith(R3, Outbound, A.arg(1));
          return Completion::normal();
        });
    App->Db.findPrefix(JSLINE(AppFile, 36), "flights", To + "-" + From + "|",
                       OnReturn);
  };

  if (Config.UsePromises) {
    PromiseRef Out =
        Db.findPrefixP(JSLINE(AppFile, 34), "flights", From + "-" + To + "|");
    R.promiseThen(JSLINE(AppFile, 35), Out,
                  R.makeFunction("onOutboundFlights", JSLINE(AppFile, 35),
                                 [QueryReturn](Runtime &R2,
                                               const CallArgs &A) {
                                   QueryReturn(R2, A.arg(0));
                                   return Completion::normal();
                                 }));
    return;
  }
  Db.findPrefix(JSLINE(AppFile, 34), "flights", From + "-" + To + "|",
                R.makeFunction("onOutboundFlights", JSLINE(AppFile, 35),
                               [QueryReturn](Runtime &R2,
                                             const CallArgs &A) {
                                 QueryReturn(R2, A.arg(1));
                                 return Completion::normal();
                               }));
}

//===----------------------------------------------------------------------===//
// Session validation shared by booking/profile handlers.
//===----------------------------------------------------------------------===//

void AcmeAirApp::withSession(
    Runtime &R, const std::map<std::string, std::string> &P,
    std::shared_ptr<ServerResponse> Res,
    std::function<void(Runtime &, std::string)> Then) {
  std::string Token = param(P, "token");
  AcmeAirApp *App = this;

  auto Check = [App, Res, Then](Runtime &R2, Value SessionDoc) {
    if (!SessionDoc.isObject()) {
      App->finish(Res, 401, "ERR invalid-session");
      return;
    }
    Then(R2, SessionDoc.asObject()->get("customer").asString());
  };

  if (Config.UsePromises) {
    PromiseRef Found = Db.findOneP(JSLINE(AppFile, 44), "sessions", Token);
    R.promiseThen(JSLINE(AppFile, 45), Found,
                  R.makeFunction("onSession", JSLINE(AppFile, 45),
                                 [Check](Runtime &R2, const CallArgs &A) {
                                   Check(R2, A.arg(0));
                                   return Completion::normal();
                                 }));
    return;
  }
  Db.findOne(JSLINE(AppFile, 44), "sessions", Token,
             R.makeFunction("onSession", JSLINE(AppFile, 45),
                            [Check](Runtime &R2, const CallArgs &A) {
                              Check(R2, A.arg(1));
                              return Completion::normal();
                            }));
}

void AcmeAirApp::handleBookFlights(
    Runtime &R, const std::map<std::string, std::string> &P,
    std::shared_ptr<ServerResponse> Res) {
  std::string Flight = param(P, "flight");
  AcmeAirApp *App = this;
  withSession(R, P, Res, [App, Flight, Res](Runtime &R2,
                                            std::string Customer) {
    std::string Key =
        Customer + "|b" + std::to_string(App->BookingSeq++);
    Value Doc = Object::make("Booking");
    Doc.asObject()->set("customer", Value::str(Customer));
    Doc.asObject()->set("flight", Value::str(Flight));
    Function OnBooked = R2.makeFunction(
        "onBooked", JSLINE(AppFile, 54),
        [App, Res, Key](Runtime &, const CallArgs &) {
          App->finish(Res, 200, "OK booked=" + Key);
          return Completion::normal();
        });
    App->Db.update(JSLINE(AppFile, 54), "bookings", Key, Doc, OnBooked);
  });
}

void AcmeAirApp::handleViewProfile(
    Runtime &R, const std::map<std::string, std::string> &P,
    std::shared_ptr<ServerResponse> Res) {
  AcmeAirApp *App = this;
  withSession(R, P, Res, [App, Res](Runtime &R2, std::string Customer) {
    auto Respond = [App, Res](Runtime &, Value Doc) {
      std::string Name = Doc.isObject()
                             ? Doc.asObject()->get("name").asString()
                             : "?";
      App->finish(Res, 200, "OK name=" + Name);
    };
    if (App->Config.UsePromises) {
      PromiseRef Found =
          App->Db.findOneP(JSLINE(AppFile, 62), "customers", Customer);
      R2.promiseThen(JSLINE(AppFile, 62), Found,
                     R2.makeFunction("onProfile", JSLINE(AppFile, 62),
                                     [Respond](Runtime &R3,
                                               const CallArgs &A) {
                                       Respond(R3, A.arg(0));
                                       return Completion::normal();
                                     }));
      return;
    }
    Function OnCustomer = R2.makeFunction(
        "onProfile", JSLINE(AppFile, 62),
        [Respond](Runtime &R3, const CallArgs &A) {
          Respond(R3, A.arg(1));
          return Completion::normal();
        });
    App->Db.findOne(JSLINE(AppFile, 62), "customers", Customer, OnCustomer);
  });
}

void AcmeAirApp::handleUpdateProfile(
    Runtime &R, const std::map<std::string, std::string> &P,
    std::shared_ptr<ServerResponse> Res) {
  std::string NewName = param(P, "name");
  AcmeAirApp *App = this;
  withSession(R, P, Res, [App, Res, NewName](Runtime &R2,
                                             std::string Customer) {
    Function OnCustomer = R2.makeFunction(
        "onProfileForUpdate", JSLINE(AppFile, 70),
        [App, Res, Customer, NewName](Runtime &R3, const CallArgs &A) {
          Value Doc = A.arg(1);
          if (!Doc.isObject()) {
            App->finish(Res, 404, "ERR no-customer");
            return Completion::normal();
          }
          Doc.asObject()->set("name", Value::str(NewName));
          Function OnStored = R3.makeFunction(
              "onProfileStored", JSLINE(AppFile, 74),
              [App, Res](Runtime &, const CallArgs &) {
                App->finish(Res, 200, "OK updated");
                return Completion::normal();
              });
          App->Db.update(JSLINE(AppFile, 74), "customers", Customer, Doc,
                         OnStored);
          return Completion::normal();
        });
    App->Db.findOne(JSLINE(AppFile, 70), "customers", Customer, OnCustomer);
  });
}

void AcmeAirApp::handleCountBookings(Runtime &R,
                                     std::shared_ptr<ServerResponse> Res) {
  AcmeAirApp *App = this;
  Db.findPrefix(JSLINE(AppFile, 80), "bookings", "",
                R.makeFunction("onBookingCount", JSLINE(AppFile, 80),
                               [App, Res](Runtime &, const CallArgs &A) {
                                 size_t N = A.arg(1).isArray()
                                                ? A.arg(1).asArray()->size()
                                                : 0;
                                 App->finish(Res, 200,
                                             strFormat("OK count=%zu", N));
                                 return Completion::normal();
                               }));
}
