//===- MockMongo.cpp - asynchronous in-memory document store ------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/acmeair/MockMongo.h"

#include "jsrt/Object.h"
#include "support/Format.h"

using namespace asyncg;
using namespace asyncg::acmeair;
using namespace asyncg::jsrt;

MockMongo::MockMongo(Runtime &RT, MongoConfig Config)
    : RT(RT), Config(Config) {
  PoolNoop = RT.makeBuiltin("(mongo pool)", [](Runtime &, const CallArgs &) {
    return Completion::normal();
  });
}

void MockMongo::insertSync(const std::string &Coll, const std::string &Key,
                           Value Doc) {
  Collections[Coll][Key] = std::move(Doc);
}

Value MockMongo::getSync(const std::string &Coll,
                         const std::string &Key) const {
  return lookup(Coll, Key);
}

size_t MockMongo::countSync(const std::string &Coll) const {
  auto It = Collections.find(Coll);
  return It == Collections.end() ? 0 : It->second.size();
}

Value MockMongo::lookup(const std::string &Coll,
                        const std::string &Key) const {
  auto CIt = Collections.find(Coll);
  if (CIt == Collections.end())
    return Value::null();
  auto DIt = CIt->second.find(Key);
  return DIt == CIt->second.end() ? Value::null() : DIt->second;
}

Value MockMongo::collectPrefix(const std::string &Coll,
                               const std::string &Prefix) const {
  auto A = std::make_shared<ArrayData>();
  auto CIt = Collections.find(Coll);
  if (CIt != Collections.end()) {
    for (auto It = CIt->second.lower_bound(Prefix); It != CIt->second.end();
         ++It) {
      if (!startsWith(It->first, Prefix))
        break;
      A->push(It->second);
    }
  }
  return Value::array(std::move(A));
}

void MockMongo::asyncOp(SourceLocation Loc,
                        std::function<void(Runtime &)> Deliver) {
  ++Ops;
  // Surface the API use to the analyses (a CR-less bookkeeping event; the
  // actual callback registration is the driver's nextTick delivery).
  if (!RT.hooks().empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = ApiKind::DbQuery;
    E.Loc = std::move(Loc);
    E.TargetPhase = PhaseKind::Io;
    RT.hooks().fireApiCall(E);
  }

  Runtime *R = &RT;
  int PoolTicks = Config.PoolTicksPerOp;
  Function Pool = PoolNoop;
  RT.kernel().submit(Config.LatencyUs,
                     [R, PoolTicks, Pool, Deliver = std::move(Deliver)] {
                       R->dispatchInternal(
                           "(mongo reply)",
                           [PoolTicks, Pool, Deliver](Runtime &R2) {
                             // Connection-pool bookkeeping micro-tasks.
                             for (int I = 0; I < PoolTicks; ++I)
                               R2.nextTick(SourceLocation::internal(), Pool);
                             Deliver(R2);
                           });
                     });
}

void MockMongo::findOne(SourceLocation Loc, const std::string &Coll,
                        const std::string &Key, const Function &Cb) {
  assert(Cb.isValid() && "findOne requires a callback");
  asyncOp(Loc, [this, Coll, Key, Cb](Runtime &R) {
    Value Doc = lookup(Coll, Key);
    R.nextTick(SourceLocation::internal(), Cb, {Value::null(), Doc});
  });
}

void MockMongo::update(SourceLocation Loc, const std::string &Coll,
                       const std::string &Key, Value Doc,
                       const Function &Cb) {
  assert(Cb.isValid() && "update requires a callback");
  asyncOp(Loc, [this, Coll, Key, Doc, Cb](Runtime &R) {
    Collections[Coll][Key] = Doc;
    R.nextTick(SourceLocation::internal(), Cb, {Value::null()});
  });
}

void MockMongo::remove(SourceLocation Loc, const std::string &Coll,
                       const std::string &Key, const Function &Cb) {
  assert(Cb.isValid() && "remove requires a callback");
  asyncOp(Loc, [this, Coll, Key, Cb](Runtime &R) {
    size_t Removed = Collections[Coll].erase(Key);
    R.nextTick(SourceLocation::internal(), Cb,
               {Value::null(), Value::number(static_cast<double>(Removed))});
  });
}

void MockMongo::findPrefix(SourceLocation Loc, const std::string &Coll,
                           const std::string &Prefix, const Function &Cb) {
  assert(Cb.isValid() && "findPrefix requires a callback");
  asyncOp(Loc, [this, Coll, Prefix, Cb](Runtime &R) {
    R.nextTick(SourceLocation::internal(), Cb,
               {Value::null(), collectPrefix(Coll, Prefix)});
  });
}

PromiseRef MockMongo::findOneP(SourceLocation Loc, const std::string &Coll,
                               const std::string &Key) {
  PromiseRef P = RT.promiseBare(Loc, "db.findOne");
  asyncOp(Loc, [this, Coll, Key, P](Runtime &R) {
    R.resolvePromiseInternal(P, lookup(Coll, Key));
  });
  return P;
}

PromiseRef MockMongo::updateP(SourceLocation Loc, const std::string &Coll,
                              const std::string &Key, Value Doc) {
  PromiseRef P = RT.promiseBare(Loc, "db.update");
  asyncOp(Loc, [this, Coll, Key, Doc, P](Runtime &R) {
    Collections[Coll][Key] = Doc;
    R.resolvePromiseInternal(P, Value::boolean(true));
  });
  return P;
}

PromiseRef MockMongo::findPrefixP(SourceLocation Loc,
                                  const std::string &Coll,
                                  const std::string &Prefix) {
  PromiseRef P = RT.promiseBare(Loc, "db.find");
  asyncOp(Loc, [this, Coll, Prefix, P](Runtime &R) {
    R.resolvePromiseInternal(P, collectPrefix(Coll, Prefix));
  });
  return P;
}
