//===- App.h - the AcmeAir-like flight-booking server -----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation workload of §VII-B: an AcmeAir-like flight-booking
/// backend on the jsrt runtime. It "mixes the use of different
/// asynchronous APIs": HTTP requests arrive through emitters, request
/// bodies stream as 'data'/'end' events, and the database is accessed
/// through the mock-mongo driver with either the classic callback
/// interface or the promise interface (the paper modified AcmeAir to use
/// the promise-version mongodb interface).
///
/// Endpoints (a subset of real AcmeAir's REST API):
///   POST /rest/api/login                user=<id>&password=<pw>
///   GET  /rest/api/queryflights         from=<A>&to=<B>
///   POST /rest/api/bookflights          token=<t>&flight=<f>
///   GET  /rest/api/customer/byid        token=<t>
///   POST /rest/api/customer/update      token=<t>&name=<n>
///   GET  /rest/api/config/countBookings
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_APPS_ACMEAIR_APP_H
#define ASYNCG_APPS_ACMEAIR_APP_H

#include "apps/acmeair/MockMongo.h"
#include "jsrt/Runtime.h"
#include "node/Http.h"

#include <map>
#include <memory>
#include <string>

namespace asyncg {
namespace acmeair {

/// Application configuration.
struct AppConfig {
  int Port = 9080;
  /// Use the promise-version db interface where the modified AcmeAir does;
  /// false reproduces the stock callback-only application.
  bool UsePromises = true;
  MongoConfig Mongo;
  /// Seeded customers (uid0 .. uidN-1, password "password").
  int Customers = 100;
  /// Flights seeded per airport pair.
  int FlightsPerRoute = 5;
};

/// Parses "k1=v1&k2=v2" into a map (used for query strings and bodies).
std::map<std::string, std::string> parseForm(const std::string &S);

/// The AcmeAir server.
class AcmeAirApp {
public:
  AcmeAirApp(jsrt::Runtime &RT, AppConfig Config = AppConfig());

  /// Seeds the database, creates the HTTP server, and starts listening.
  /// Must run inside the program's main tick.
  void start(SourceLocation Loc);

  MockMongo &db() { return Db; }
  const AppConfig &config() const { return Config; }
  const std::shared_ptr<node::http::HttpServer> &server() const {
    return Server;
  }

  /// Requests fully served (res.end reached).
  uint64_t served() const { return Served; }

  /// The airports flights are seeded between.
  static const std::vector<std::string> &airports();

private:
  void seed();

  /// Dispatches one parsed request to its handler.
  void route(jsrt::Runtime &R, const std::string &Method,
             const std::string &Path,
             const std::map<std::string, std::string> &Params,
             std::shared_ptr<node::http::ServerResponse> Res);

  void handleLogin(jsrt::Runtime &R,
                   const std::map<std::string, std::string> &P,
                   std::shared_ptr<node::http::ServerResponse> Res);
  void handleQueryFlights(jsrt::Runtime &R,
                          const std::map<std::string, std::string> &P,
                          std::shared_ptr<node::http::ServerResponse> Res);
  void handleBookFlights(jsrt::Runtime &R,
                         const std::map<std::string, std::string> &P,
                         std::shared_ptr<node::http::ServerResponse> Res);
  void handleViewProfile(jsrt::Runtime &R,
                         const std::map<std::string, std::string> &P,
                         std::shared_ptr<node::http::ServerResponse> Res);
  void handleUpdateProfile(jsrt::Runtime &R,
                           const std::map<std::string, std::string> &P,
                           std::shared_ptr<node::http::ServerResponse> Res);
  void handleCountBookings(jsrt::Runtime &R,
                           std::shared_ptr<node::http::ServerResponse> Res);

  /// Validates a session token, then calls \p Then(customerId) or ends the
  /// response with 401. Uses the promise interface when configured.
  void withSession(jsrt::Runtime &R,
                   const std::map<std::string, std::string> &P,
                   std::shared_ptr<node::http::ServerResponse> Res,
                   std::function<void(jsrt::Runtime &, std::string)> Then);

  void finish(std::shared_ptr<node::http::ServerResponse> Res, int Status,
              const std::string &Body);

  jsrt::Runtime &RT;
  AppConfig Config;
  MockMongo Db;
  std::shared_ptr<node::http::HttpServer> Server;
  uint64_t Served = 0;
  uint64_t BookingSeq = 0;
};

} // namespace acmeair
} // namespace asyncg

#endif // ASYNCG_APPS_ACMEAIR_APP_H
