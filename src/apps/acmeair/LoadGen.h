//===- LoadGen.h - wire-level HTTP load generator ---------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wall-clock counterpart of WorkloadDriver: a closed-loop HTTP/1.1
/// client driver that talks real TCP to an AcmeAir server running on the
/// epoll kernel backend. Same login flow, same weighted request mix, same
/// per-client seeding — but over the wire, from outside the instrumented
/// process loop, like the paper's JMeter driver. One thread multiplexes
/// all keep-alive connections with poll(2) and records per-request
/// latencies for the percentile summary.
///
/// Linux-only (it exists to drive the epoll backend); on other platforms
/// runWireLoad reports failure and wireLoadSupported() is false.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_APPS_ACMEAIR_LOADGEN_H
#define ASYNCG_APPS_ACMEAIR_LOADGEN_H

#include "apps/acmeair/Workload.h"

#include <cstdint>

namespace asyncg {
namespace acmeair {

/// Wire-load configuration.
struct LoadConfig {
  int Port = 9080;
  /// Keep-alive connections, each a closed-loop client.
  int Connections = 8;
  /// Total requests across all connections.
  uint64_t TotalRequests = 1000;
  uint64_t Seed = 42;
  /// Customers the app was seeded with (user ids are drawn from here).
  int Customers = 100;
  WorkloadMix Mix;
  /// How long connect() keeps retrying while the servers come up (ms).
  int ConnectTimeoutMs = 2000;
  /// Per-request deadline (ms). A request with no response inside the
  /// window is timed out: its connection is torn down (a late response on
  /// the same stream would be misattributed) and the request is retried or
  /// abandoned. 0 = wait forever (the pre-fault-injection behavior).
  int RequestTimeoutMs = 0;
  /// Resend budget per request after a timeout or a lost connection, each
  /// retry on a fresh connection after a bounded, jittered backoff.
  /// 0 = never retry; the request is abandoned on first failure.
  int MaxRetries = 0;
};

/// Wire-load outcome.
struct LoadStats {
  uint64_t Issued = 0;
  /// Responses received (any status).
  uint64_t Completed = 0;
  /// Non-200 responses (a subset of Completed).
  uint64_t Errors = 0;
  /// Connections lost (reset / premature close) before the run finished.
  uint64_t DroppedConns = 0;
  /// Requests that hit RequestTimeoutMs (including ones whose retry later
  /// completed).
  uint64_t Timeouts = 0;
  /// Resends performed after a timeout or a lost connection.
  uint64_t Retries = 0;
  /// Requests given up on (retry budget exhausted or reconnect failed).
  /// At return Issued == Completed + Abandoned: nothing blocks forever.
  uint64_t Abandoned = 0;
  double WallSeconds = 0;
  double ReqPerSec = 0;
  /// Request latency percentiles (microseconds).
  uint64_t P50Us = 0;
  uint64_t P90Us = 0;
  uint64_t P99Us = 0;
};

/// True when this build can drive wire load (Linux).
bool wireLoadSupported();

/// Runs the closed-loop workload against 127.0.0.1:\p Cfg.Port until
/// TotalRequests responses are in (blocking; call from a non-loop thread).
/// Returns false when no connection could ever be established or the
/// platform has no wire support; partial results are still written to
/// \p Out.
bool runWireLoad(const LoadConfig &Cfg, LoadStats &Out);

} // namespace acmeair
} // namespace asyncg

#endif // ASYNCG_APPS_ACMEAIR_LOADGEN_H
