//===- Workload.h - JMeter-like closed-loop workload driver -----*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload generator standing in for the AcmeAir JMeter driver
/// (§VII-B): N concurrent simulated clients in a closed loop, each logging
/// in and then issuing a weighted mix of flight queries, bookings, and
/// profile operations over keep-alive connections. The driver lives
/// outside the instrumented JS world (as JMeter does) and talks raw
/// simulated sockets.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_APPS_ACMEAIR_WORKLOAD_H
#define ASYNCG_APPS_ACMEAIR_WORKLOAD_H

#include "jsrt/Runtime.h"
#include "sim/Random.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace asyncg {
namespace acmeair {

/// Request mix weights (default approximates the AcmeAir driver: queries
/// dominate, bookings and profile operations follow).
struct WorkloadMix {
  double QueryFlights = 50;
  double ViewProfile = 22;
  double BookFlight = 12;
  double UpdateProfile = 6;
  double Login = 10;
};

/// Driver configuration.
struct WorkloadConfig {
  int Clients = 8;
  /// Total requests (across all clients) before the driver stops.
  uint64_t TotalRequests = 1000;
  uint64_t Seed = 42;
  WorkloadMix Mix;
  /// Customers the app was seeded with (user ids are drawn from here).
  int Customers = 100;
};

/// The closed-loop driver.
class WorkloadDriver {
public:
  WorkloadDriver(jsrt::Runtime &RT, int Port,
                 WorkloadConfig Config = WorkloadConfig());
  ~WorkloadDriver();

  /// Connects the clients and begins issuing requests. Call inside the
  /// main tick after the server listens; the run completes when
  /// Runtime::runLoop drains.
  void start();

  uint64_t completed() const { return Completed; }
  uint64_t errors() const { return Errors; }
  uint64_t issued() const { return Issued; }

private:
  struct Client;

  void issueNext(Client &C);
  void onResponse(Client &C, int Status, const std::string &Body);

  jsrt::Runtime &RT;
  int Port;
  WorkloadConfig Config;
  std::vector<std::unique_ptr<Client>> Clients;
  uint64_t Issued = 0;
  uint64_t Completed = 0;
  uint64_t Errors = 0;
};

} // namespace acmeair
} // namespace asyncg

#endif // ASYNCG_APPS_ACMEAIR_WORKLOAD_H
