//===- MockMongo.h - asynchronous in-memory document store ------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MongoDB stand-in backing the AcmeAir server. Like the real driver,
/// every operation completes asynchronously: the reply arrives as an I/O
/// event, the driver does its pool bookkeeping via process.nextTick, and
/// the user sees either a callback (deferred with nextTick, as the classic
/// driver does) or a promise (the promise-version interface the paper's
/// modified AcmeAir uses). This internal structure is what produces the
/// per-request nextTick/promise callback mix of Fig. 6(b).
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_APPS_ACMEAIR_MOCKMONGO_H
#define ASYNCG_APPS_ACMEAIR_MOCKMONGO_H

#include "jsrt/Runtime.h"

#include <map>
#include <string>

namespace asyncg {
namespace acmeair {

/// Configuration of the mock database.
struct MongoConfig {
  /// Virtual latency of one operation (microseconds).
  sim::SimTime LatencyUs = 150;
  /// Internal nextTick hops the driver performs per operation (connection
  /// pool checkout, cursor advance, pool release — as the real driver
  /// does; this drives the nextTick bar of Fig. 6(b)).
  int PoolTicksPerOp = 3;
};

/// An in-memory document store with an asynchronous driver interface.
/// Documents are jsrt Values (usually objects); collections are keyed by
/// string.
class MockMongo {
public:
  MockMongo(jsrt::Runtime &RT, MongoConfig Config = MongoConfig());

  /// \name Synchronous seeding/inspection helpers (setup only)
  /// @{
  void insertSync(const std::string &Coll, const std::string &Key,
                  jsrt::Value Doc);
  jsrt::Value getSync(const std::string &Coll, const std::string &Key) const;
  size_t countSync(const std::string &Coll) const;
  /// @}

  /// \name Callback interface (classic driver)
  /// @{

  /// findOne: \p Cb receives (null, doc) or (null, null) when absent.
  void findOne(SourceLocation Loc, const std::string &Coll,
               const std::string &Key, const jsrt::Function &Cb);

  /// upsert: \p Cb receives (null).
  void update(SourceLocation Loc, const std::string &Coll,
              const std::string &Key, jsrt::Value Doc,
              const jsrt::Function &Cb);

  /// remove: \p Cb receives (null, removedCount).
  void remove(SourceLocation Loc, const std::string &Coll,
              const std::string &Key, const jsrt::Function &Cb);

  /// find by key prefix: \p Cb receives (null, array of docs).
  void findPrefix(SourceLocation Loc, const std::string &Coll,
                  const std::string &Prefix, const jsrt::Function &Cb);
  /// @}

  /// \name Promise interface (the paper's modified AcmeAir)
  /// @{
  jsrt::PromiseRef findOneP(SourceLocation Loc, const std::string &Coll,
                            const std::string &Key);
  jsrt::PromiseRef updateP(SourceLocation Loc, const std::string &Coll,
                           const std::string &Key, jsrt::Value Doc);
  jsrt::PromiseRef findPrefixP(SourceLocation Loc, const std::string &Coll,
                               const std::string &Prefix);
  /// @}

  /// Operations issued so far.
  uint64_t opCount() const { return Ops; }

private:
  /// Computes a result now and delivers it asynchronously: I/O reply tick,
  /// pool nextTicks, then \p Deliver runs inside the reply tick context.
  void asyncOp(SourceLocation Loc,
               std::function<void(jsrt::Runtime &)> Deliver);

  jsrt::Value lookup(const std::string &Coll, const std::string &Key) const;
  jsrt::Value collectPrefix(const std::string &Coll,
                            const std::string &Prefix) const;

  jsrt::Runtime &RT;
  MongoConfig Config;
  std::map<std::string, std::map<std::string, jsrt::Value>> Collections;
  jsrt::Function PoolNoop;
  uint64_t Ops = 0;
};

} // namespace acmeair
} // namespace asyncg

#endif // ASYNCG_APPS_ACMEAIR_MOCKMONGO_H
