//===- LoadGen.cpp - wire-level HTTP load generator ---------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/acmeair/LoadGen.h"

#include "apps/acmeair/App.h"
#include "sim/Random.h"
#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#ifdef __linux__
#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#endif

using namespace asyncg;
using namespace asyncg::acmeair;

#ifdef __linux__

namespace {

using Clock = std::chrono::steady_clock;

/// One keep-alive connection and its closed-loop session state.
struct Conn {
  int Fd = -1;
  sim::Random Rng{0};
  std::string User;
  std::string Token;
  /// Unsent request bytes (partial-write carry).
  std::string Out;
  size_t OutOff = 0;
  /// Unparsed response bytes.
  std::string In;
  bool InFlight = false;
  Clock::time_point SentAt;
  bool Alive = true;
  /// The current request's bytes, kept verbatim for a retry resend.
  std::string LastReq;
  /// Send attempts for the current request (1 = first send).
  int Attempts = 0;
  /// True while the current request waits out a retry backoff.
  bool RetryPending = false;
  Clock::time_point RetryAt;
};

std::string httpRequest(const std::string &Method, const std::string &Path,
                        const std::string &Body) {
  std::string R = Method + " " + Path + " HTTP/1.1\r\n";
  R += "Host: 127.0.0.1\r\n";
  R += "Content-Length: " + std::to_string(Body.size()) + "\r\n";
  R += "Connection: keep-alive\r\n\r\n";
  R += Body;
  return R;
}

/// Mirrors WorkloadDriver::issueNext: login until a token is held, then
/// the weighted operation mix, drawing from the same per-client stream.
std::string nextRequest(Conn &C, const WorkloadMix &M) {
  if (C.Token.empty())
    return httpRequest("POST", "/rest/api/login",
                       "user=" + C.User + "&password=password");

  double Weights[5] = {M.QueryFlights, M.ViewProfile, M.BookFlight,
                       M.UpdateProfile, M.Login};
  size_t Op = C.Rng.pickWeighted(Weights);
  const auto &Air = AcmeAirApp::airports();
  switch (Op) {
  case 0: {
    size_t A = C.Rng.nextInt(0, Air.size() - 1);
    size_t B = C.Rng.nextInt(0, Air.size() - 2);
    if (B >= A)
      ++B;
    return httpRequest(
        "GET", "/rest/api/queryflights?from=" + Air[A] + "&to=" + Air[B], "");
  }
  case 1:
    return httpRequest("GET", "/rest/api/customer/byid?token=" + C.Token, "");
  case 2: {
    size_t A = C.Rng.nextInt(0, Air.size() - 1);
    size_t B = (A + 1) % Air.size();
    return httpRequest("POST", "/rest/api/bookflights",
                       "token=" + C.Token + "&flight=" + Air[A] + "-" +
                           Air[B] + "|f0");
  }
  case 3:
    return httpRequest("POST", "/rest/api/customer/update",
                       "token=" + C.Token + "&name=Customer" +
                           std::to_string(C.Rng.nextInt(0, 999)));
  default:
    return httpRequest("POST", "/rest/api/login",
                       "user=" + C.User + "&password=password");
  }
}

/// Pops one complete HTTP response off the front of \p In. Returns false
/// while the buffer holds less than a full response.
bool popResponse(std::string &In, int &Status, std::string &Body) {
  size_t HdrEnd = In.find("\r\n\r\n");
  if (HdrEnd == std::string::npos)
    return false;
  size_t Len = 0;
  {
    // Case-insensitive Content-Length scan over the header block.
    std::string Hdr = In.substr(0, HdrEnd);
    std::string Lower = Hdr;
    std::transform(Lower.begin(), Lower.end(), Lower.begin(),
                   [](unsigned char Ch) { return std::tolower(Ch); });
    size_t P = Lower.find("content-length:");
    if (P != std::string::npos)
      Len = std::strtoul(Hdr.c_str() + P + 15, nullptr, 10);
  }
  size_t Total = HdrEnd + 4 + Len;
  if (In.size() < Total)
    return false;
  Status = 0;
  if (In.compare(0, 9, "HTTP/1.1 ") == 0)
    Status = std::atoi(In.c_str() + 9);
  Body = In.substr(HdrEnd + 4, Len);
  In.erase(0, Total);
  return true;
}

/// Blocking loopback connect with retry (the servers may still be
/// binding); the fd comes back non-blocking with Nagle off.
int connectRetry(int Port, int TimeoutMs) {
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(TimeoutMs);
  for (;;) {
    int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd < 0)
      return -1;
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Port));
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0) {
      int Flags = ::fcntl(Fd, F_GETFL, 0);
      ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
      int One = 1;
      ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
      return Fd;
    }
    ::close(Fd);
    if (Clock::now() >= Deadline)
      return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

} // namespace

bool asyncg::acmeair::wireLoadSupported() { return true; }

bool asyncg::acmeair::runWireLoad(const LoadConfig &Cfg, LoadStats &Out) {
  Out = LoadStats();
  std::vector<Conn> Conns(static_cast<size_t>(std::max(Cfg.Connections, 1)));
  size_t AliveCount = 0;
  for (size_t I = 0; I != Conns.size(); ++I) {
    Conn &C = Conns[I];
    C.Rng = sim::Random(Cfg.Seed * 7919 + I);
    C.User = "uid" + std::to_string(C.Rng.nextInt(
                         0, static_cast<uint64_t>(Cfg.Customers - 1)));
    C.Fd = connectRetry(Cfg.Port, Cfg.ConnectTimeoutMs);
    if (C.Fd < 0)
      C.Alive = false;
    else
      ++AliveCount;
  }
  if (AliveCount == 0)
    return false;

  std::vector<uint64_t> Latencies;
  Latencies.reserve(Cfg.TotalRequests);
  Clock::time_point Start = Clock::now();

  // Jittered exponential backoff before a retry resend (bounded at
  // 320ms + jitter); the jitter draws from the connection's own stream so
  // the schedule stays a function of the seed.
  auto BackoffFor = [](Conn &C) {
    int Shift = C.Attempts < 5 ? C.Attempts : 5;
    return std::chrono::milliseconds((10 << Shift) +
                                     static_cast<int>(C.Rng.nextInt(0, 20)));
  };
  // Gives up on the connection's current request and, with no retry budget
  // left, on the connection itself.
  auto Abandon = [&](Conn &C, size_t &Alive) {
    C.InFlight = false;
    C.RetryPending = false;
    ++Out.Abandoned;
    if (C.Fd >= 0) {
      ::close(C.Fd);
      C.Fd = -1;
    }
    C.Alive = false;
    --Alive;
  };
  // Queues the connection's current request for a resend on a fresh
  // socket. The session token is shard-local and the reconnect may be
  // routed to a sibling SO_REUSEPORT shard that never saw it, so the
  // resend re-authenticates instead of replaying an operation whose stale
  // token would cascade non-200s until the mix's next login.
  auto QueueRetry = [&](Conn &C, Clock::time_point When) {
    C.Token.clear();
    C.LastReq = httpRequest("POST", "/rest/api/login",
                            "user=" + C.User + "&password=password");
    C.RetryPending = true;
    C.RetryAt = When + BackoffFor(C);
  };

  std::vector<pollfd> Pfds;
  std::vector<size_t> PfdConn;
  char Buf[65536];
  // Stall detector: a closed-loop driver that stops making progress while
  // requests are in flight is wedged on the server (or on a desynced
  // response stream). Dump per-connection parse state once so the hang is
  // diagnosable, then keep waiting — the caller owns run-level timeouts
  // (per-request timeouts recover individual requests above).
  int IdleMs = 0;
  bool StallDumped = false;
  while (AliveCount > 0) {
    Clock::time_point Now = Clock::now();
    // Closed loop: every idle connection issues the next request; a
    // connection whose backoff expired resends its current request on a
    // fresh socket.
    for (Conn &C : Conns) {
      if (!C.Alive)
        continue;
      if (C.RetryPending) {
        if (Now < C.RetryAt)
          continue;
        if (C.Fd < 0) {
          C.Fd = connectRetry(Cfg.Port, 500);
          if (C.Fd < 0) {
            Abandon(C, AliveCount);
            continue;
          }
        }
        C.In.clear();
        C.Out = C.LastReq;
        C.OutOff = 0;
        ++C.Attempts;
        ++Out.Retries;
        C.InFlight = true;
        C.SentAt = Now;
        C.RetryPending = false;
        continue;
      }
      if (C.InFlight || Out.Issued >= Cfg.TotalRequests)
        continue;
      if (C.Fd < 0) {
        // Idle connection lost earlier (kept alive by the retry budget):
        // reconnect before issuing.
        C.Fd = connectRetry(Cfg.Port, 500);
        if (C.Fd < 0) {
          C.Alive = false;
          --AliveCount;
          continue;
        }
        C.In.clear();
        C.Out.clear();
        C.OutOff = 0;
      }
      C.LastReq = nextRequest(C, Cfg.Mix);
      C.Out += C.LastReq;
      C.Attempts = 1;
      C.InFlight = true;
      C.SentAt = Now;
      ++Out.Issued;
    }
    // Per-request deadline: a response overdue past the window means the
    // stream can no longer be trusted (a late response would be
    // misattributed to the next request), so the connection is torn down
    // and the request retried on a fresh one — or abandoned.
    if (Cfg.RequestTimeoutMs > 0)
      for (Conn &C : Conns) {
        if (!C.Alive || !C.InFlight)
          continue;
        if (Now - C.SentAt < std::chrono::milliseconds(Cfg.RequestTimeoutMs))
          continue;
        ++Out.Timeouts;
        ::close(C.Fd);
        C.Fd = -1;
        C.InFlight = false;
        if (C.Attempts <= Cfg.MaxRetries) {
          QueueRetry(C, Now);
        } else {
          Abandon(C, AliveCount);
        }
      }
    if (Out.Issued >= Cfg.TotalRequests) {
      bool AnyInFlight = false;
      for (const Conn &C : Conns)
        if (C.Alive && (C.InFlight || C.RetryPending))
          AnyInFlight = true;
      if (!AnyInFlight)
        break;
    }

    Pfds.clear();
    PfdConn.clear();
    for (size_t I = 0; I != Conns.size(); ++I) {
      Conn &C = Conns[I];
      if (!C.Alive || C.Fd < 0)
        continue;
      pollfd P{};
      P.fd = C.Fd;
      P.events = POLLIN;
      if (C.OutOff < C.Out.size())
        P.events |= POLLOUT;
      Pfds.push_back(P);
      PfdConn.push_back(I);
    }
    // With deadlines or pending backoffs in play, poll must wake often
    // enough to fire them; otherwise the old 1s tick is fine.
    bool AnyRetryPending = false;
    for (const Conn &C : Conns)
      if (C.Alive && C.RetryPending)
        AnyRetryPending = true;
    int PollMs =
        (Cfg.RequestTimeoutMs > 0 || AnyRetryPending) ? 10 : 1000;
    int Ready = Pfds.empty()
                    ? (std::this_thread::sleep_for(
                           std::chrono::milliseconds(PollMs)),
                       0)
                    : ::poll(Pfds.data(), Pfds.size(), PollMs);
    if (Ready < 0 && errno != EINTR)
      break;
    if (Ready > 0) {
      IdleMs = 0;
    } else if ((IdleMs += PollMs) >= 5000 && !StallDumped) {
      StallDumped = true;
      fprintf(stderr,
              "wire load stalled: issued=%llu completed=%llu, no traffic "
              "for %ds with requests in flight\n",
              static_cast<unsigned long long>(Out.Issued),
              static_cast<unsigned long long>(Out.Completed), IdleMs / 1000);
      for (size_t I = 0; I != Conns.size(); ++I) {
        const Conn &C = Conns[I];
        if (!C.Alive || !C.InFlight)
          continue;
        std::string Tail = C.In.size() > 160 ? C.In.substr(C.In.size() - 160)
                                             : C.In;
        for (char &Ch : Tail)
          if (static_cast<unsigned char>(Ch) < 0x20 && Ch != '\n')
            Ch = '.';
        fprintf(stderr,
                "  conn %zu fd=%d: unsent=%zu, unparsed response buffer "
                "%zu byte(s)%s%s\n",
                I, C.Fd, C.Out.size() - C.OutOff, C.In.size(),
                C.In.empty() ? "" : ", tail:\n----\n",
                C.In.empty() ? "" : (Tail + "\n----").c_str());
      }
    }

    for (size_t PI = 0; PI != Pfds.size(); ++PI) {
      Conn &C = Conns[PfdConn[PI]];
      short Re = Pfds[PI].revents;
      if (Re == 0)
        continue;
      bool Dead = false;
      if (Re & POLLOUT) {
        while (C.OutOff < C.Out.size()) {
          ssize_t N =
              ::send(C.Fd, C.Out.data() + C.OutOff, C.Out.size() - C.OutOff,
                     MSG_NOSIGNAL);
          if (N > 0) {
            C.OutOff += static_cast<size_t>(N);
            continue;
          }
          if (N < 0 && errno == EINTR)
            continue;
          if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
          Dead = true;
          break;
        }
        if (C.OutOff == C.Out.size()) {
          C.Out.clear();
          C.OutOff = 0;
        }
      }
      if (!Dead && (Re & (POLLIN | POLLERR | POLLHUP))) {
        for (;;) {
          ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
          if (N > 0) {
            C.In.append(Buf, static_cast<size_t>(N));
            continue;
          }
          if (N < 0 && errno == EINTR)
            continue;
          if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
          Dead = true; // EOF or reset mid-run
          break;
        }
        int Status;
        std::string Body;
        while (popResponse(C.In, Status, Body)) {
          if (C.InFlight) {
            C.InFlight = false;
            ++Out.Completed;
            Latencies.push_back(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - C.SentAt)
                    .count()));
            if (Status != 200)
              ++Out.Errors;
            else if (startsWith(Body, "OK token="))
              C.Token = Body.substr(9);
          }
        }
      }
      if (Dead) {
        ::close(C.Fd);
        C.Fd = -1;
        ++Out.DroppedConns;
        C.Token.clear(); // the shard-local session dies with the socket
        if (C.InFlight) {
          C.InFlight = false;
          if (C.Attempts <= Cfg.MaxRetries) {
            // Lost mid-request (e.g. an injected peer reset): resend on a
            // fresh connection after the backoff.
            QueueRetry(C, Clock::now());
          } else {
            Abandon(C, AliveCount);
          }
        } else if (Cfg.MaxRetries == 0) {
          // Idle connection lost with no retry budget: permanently out.
          C.Alive = false;
          --AliveCount;
        }
        // Idle + retries allowed: stays alive; the issue pump reconnects.
      }
    }
  }

  Out.WallSeconds =
      std::chrono::duration<double>(Clock::now() - Start).count();
  for (Conn &C : Conns)
    if (C.Fd >= 0)
      ::close(C.Fd); // clean FIN: buffers are empty between requests
  if (Out.WallSeconds > 0)
    Out.ReqPerSec = static_cast<double>(Out.Completed) / Out.WallSeconds;
  if (!Latencies.empty()) {
    std::sort(Latencies.begin(), Latencies.end());
    auto Pct = [&](double P) {
      size_t I = static_cast<size_t>(P * static_cast<double>(Latencies.size() - 1));
      return Latencies[I];
    };
    Out.P50Us = Pct(0.50);
    Out.P90Us = Pct(0.90);
    Out.P99Us = Pct(0.99);
  }
  return true;
}

#else // !__linux__

bool asyncg::acmeair::wireLoadSupported() { return false; }

bool asyncg::acmeair::runWireLoad(const LoadConfig &, LoadStats &Out) {
  Out = LoadStats();
  return false;
}

#endif // __linux__
