//===- Workload.cpp - JMeter-like closed-loop workload driver -----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/acmeair/Workload.h"

#include "apps/acmeair/App.h"
#include "node/Http.h"
#include "sim/Network.h"
#include "support/Format.h"

#include <cassert>

using namespace asyncg;
using namespace asyncg::acmeair;
using namespace asyncg::jsrt;
using asyncg::node::http::ClientResponse;

/// One simulated client: a keep-alive connection plus its session state.
struct WorkloadDriver::Client {
  int Id = 0;
  sim::Random Rng{0};
  std::shared_ptr<sim::Socket> Sock;
  std::string User;
  std::string Token;
  bool InFlight = false;
};

WorkloadDriver::WorkloadDriver(Runtime &RT, int Port, WorkloadConfig Config)
    : RT(RT), Port(Port), Config(Config) {}

WorkloadDriver::~WorkloadDriver() = default;

void WorkloadDriver::start() {
  for (int I = 0; I < Config.Clients; ++I) {
    auto C = std::make_unique<Client>();
    C->Id = I;
    C->Rng = sim::Random(Config.Seed * 7919 + static_cast<uint64_t>(I));
    C->User =
        "uid" + std::to_string(C->Rng.nextInt(
                    0, static_cast<uint64_t>(Config.Customers - 1)));
    Clients.push_back(std::move(C));
  }

  for (auto &CPtr : Clients) {
    Client *C = CPtr.get();
    bool Ok = RT.network().connect(
        Port, [this, C](std::shared_ptr<sim::Socket> Raw) {
          C->Sock = std::move(Raw);
          C->Sock->onData([this, C](const std::string &Msg) {
            ClientResponse Res;
            if (!node::http::parseResponse(Msg, Res))
              return;
            onResponse(*C, Res.Status, Res.Body);
          });
          issueNext(*C);
        });
    assert(Ok && "acmeair server not listening");
    (void)Ok;
  }
}

void WorkloadDriver::issueNext(Client &C) {
  if (Issued >= Config.TotalRequests) {
    if (C.Sock)
      C.Sock->end();
    return;
  }
  ++Issued;
  C.InFlight = true;

  using node::http::frameEnd;
  using node::http::frameDataChunk;
  using node::http::frameRequestLine;

  if (C.Token.empty()) {
    // Must log in first.
    C.Sock->write(frameRequestLine("POST", "/rest/api/login"));
    C.Sock->write(frameDataChunk("user=" + C.User + "&password=password"));
    C.Sock->write(frameEnd());
    return;
  }

  const WorkloadMix &M = Config.Mix;
  double Weights[5] = {M.QueryFlights, M.ViewProfile, M.BookFlight,
                       M.UpdateProfile, M.Login};
  size_t Op = C.Rng.pickWeighted(Weights);

  const auto &Air = AcmeAirApp::airports();
  switch (Op) {
  case 0: { // queryflights
    size_t A = C.Rng.nextInt(0, Air.size() - 1);
    size_t B = C.Rng.nextInt(0, Air.size() - 2);
    if (B >= A)
      ++B;
    C.Sock->write(frameRequestLine(
        "GET", "/rest/api/queryflights?from=" + Air[A] + "&to=" + Air[B]));
    C.Sock->write(frameEnd());
    return;
  }
  case 1: // view profile
    C.Sock->write(frameRequestLine(
        "GET", "/rest/api/customer/byid?token=" + C.Token));
    C.Sock->write(frameEnd());
    return;
  case 2: { // book
    size_t A = C.Rng.nextInt(0, Air.size() - 1);
    size_t B = (A + 1) % Air.size();
    std::string Flight = Air[A] + "-" + Air[B] + "|f0";
    C.Sock->write(frameRequestLine("POST", "/rest/api/bookflights"));
    C.Sock->write(
        frameDataChunk("token=" + C.Token + "&flight=" + Flight));
    C.Sock->write(frameEnd());
    return;
  }
  case 3: // update profile
    C.Sock->write(frameRequestLine("POST", "/rest/api/customer/update"));
    C.Sock->write(frameDataChunk("token=" + C.Token + "&name=Customer" +
                                 std::to_string(C.Rng.nextInt(0, 999))));
    C.Sock->write(frameEnd());
    return;
  default: // re-login
    C.Sock->write(frameRequestLine("POST", "/rest/api/login"));
    C.Sock->write(
        frameDataChunk("user=" + C.User + "&password=password"));
    C.Sock->write(frameEnd());
    return;
  }
}

void WorkloadDriver::onResponse(Client &C, int Status,
                                const std::string &Body) {
  assert(C.InFlight && "response without a pending request");
  C.InFlight = false;
  ++Completed;
  if (Status != 200) {
    ++Errors;
  } else if (startsWith(Body, "OK token=")) {
    C.Token = Body.substr(9);
  }
  issueNext(C);
}
