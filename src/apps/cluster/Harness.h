//===- Harness.h - N-loop AcmeAir cluster harness ---------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cluster-mode evaluation harness: N event loops on N threads, each
/// running its own AcmeAir server + closed-loop workload shard + Async
/// Graph builder, joined by one sim::ClusterKernel. This is the
/// SO_REUSEPORT shape of production Node clusters — the shared kernel's
/// static balancer decides which loop serves which client, loops exchange
/// worker-to-worker gossip messages over the cluster channel, and after
/// the loops join, the per-shard graphs are merged into one AsyncGraph for
/// detectors' results, queries, and rendering.
///
/// Determinism: clients are partitioned round-robin by the balancer,
/// per-shard seeds derive from the base seed, and every shard's loop is
/// single-threaded — so each shard's graph is a pure function of the
/// config. Cross-loop *arrival* interleaving is real concurrency and not
/// deterministic, but warnings are site-keyed, so the merged warning set
/// is stable across runs.
///
/// Time: each shard has its own virtual clock, exactly like wall clocks of
/// separate cores. The cluster's aggregate virtual throughput is
/// TotalRequests / max-over-shards(virtual serving time) — the virtual
/// analogue of "wall time until the last core finishes". On a machine with
/// fewer cores than loops the wall-clock numbers time-slice and cannot
/// show the scaling; the virtual numbers are the honest ones there.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_APPS_CLUSTER_HARNESS_H
#define ASYNCG_APPS_CLUSTER_HARNESS_H

#include "ag/AsyncPipeline.h"
#include "ag/ShardedGraph.h"
#include "apps/acmeair/LoadGen.h"
#include "sim/Cluster.h"
#include "sim/Fault.h"
#include "sim/Kernel.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace asyncg {
namespace cluster {

/// Cluster harness configuration.
struct ClusterConfig {
  /// Number of event loops (shards). 1 reproduces the classic single-loop
  /// run through the cluster code path.
  uint32_t Loops = 1;
  /// Kernel backend for every shard loop. Sim (default) is the virtual-time
  /// run: closed-loop WorkloadDriver clients inside each loop, deterministic
  /// results. Epoll or Uring turns the cluster into a real SO_REUSEPORT
  /// server group: every shard binds Port, the Linux kernel balances
  /// accepts, and the built-in wire load generator (TotalClients keep-alive
  /// connections, TotalRequests requests) drives them from a separate
  /// thread — in-loop drivers would have their connections cross-routed to
  /// sibling shards. Shutdown is each shard's RealKernel::requestStop once
  /// the load completes; results are wall-clock, not deterministic.
  sim::KernelBackend Backend = sim::KernelBackend::Sim;
  /// TCP port every shard binds (real backends; also the simulated port).
  int Port = 9080;
  /// Real backends only: skip the built-in load generator and keep serving
  /// until ClusterHarness::stop() is called (an external driver such as
  /// tools/agload supplies the traffic).
  bool ServeOnly = false;
  /// Total client requests across the whole cluster.
  uint64_t TotalRequests = 1000;
  /// Total closed-loop clients across the whole cluster, partitioned
  /// round-robin by the kernel balancer.
  int TotalClients = 8;
  uint64_t Seed = 42;
  /// Promise-version db interface (the paper's modified AcmeAir).
  bool UsePromises = true;
  /// Attach per-shard AsyncGBuilder + DetectorSuite. Off = baseline.
  bool Instrument = true;
  /// Build each shard's graph behind its own SPSC ring pipeline instead of
  /// inline on the loop thread.
  ag::PipelineMode Mode = ag::PipelineMode::Synchronous;
  size_t RingCapacity = 1 << 21;
  /// Worker-to-worker gossip over the cluster channel (Loops > 1 only):
  /// each loop periodically broadcasts its served-count to the next loop.
  /// Exercises the cross-loop edge machinery under the real workload.
  bool Gossip = true;
  /// Re-arming gossip timer rounds per loop.
  int GossipRounds = 8;
  /// Gossip timer period (virtual milliseconds).
  double GossipIntervalMs = 5;
  /// Overhead budget for the pipeline's adaptive sampling (percent of
  /// loop wall time; 0 = lossless). Async mode only.
  double SampleBudgetPct = 0;
  /// When non-empty, each shard records its event stream to
  /// `<RecordDir>/shard<S>.agtrace` (shard id in the stream, so the files
  /// can be replayed into a ShardedGraph merge offline).
  std::string RecordDir;
  /// Trace file encoding for RecordDir (4 = columnar delta frames).
  uint32_t TraceVer = trace::TraceVersion;
  /// Deterministic fault injection for every shard loop (DESIGN.md §5i).
  /// Each shard derives its own injector seed from FaultSeed, so the
  /// per-shard fault schedule is reproducible across runs.
  sim::FaultSpec Faults;
  uint64_t FaultSeed = 1;
  /// Ring-full policy of the async pipeline (Async mode only). Degrade
  /// enables the graceful-degradation ladder.
  ag::BackpressurePolicy Policy = ag::BackpressurePolicy::Block;
};

/// Per-shard outcome.
struct ShardResult {
  uint64_t Issued = 0;
  uint64_t Completed = 0;
  uint64_t Errors = 0;
  uint64_t Served = 0;
  /// The shard's virtual clock when its loop drained (microseconds).
  uint64_t VirtualTimeUs = 0;
  /// Cluster messages this shard sent / had delivered to it.
  uint64_t Sent = 0;
  uint64_t Received = 0;
  sim::ClusterShardStats Kernel;
  /// Kernel-syscall cost model for this shard's loop (zeros on the sim
  /// backend, which never enters the OS).
  sim::KernelStats Sys;
  /// SPSC ring backpressure (zeros when Mode is Synchronous).
  ag::BackpressureStats Backpressure;
  uint64_t PushedRecords = 0;
  /// Sampling coverage (zeros unless SampleBudgetPct was set).
  ag::SamplingStats Sampling;
  /// Record-section bytes written to this shard's trace file (0 when
  /// RecordDir is empty).
  uint64_t RecordedBytes = 0;
  /// Graceful-degradation ladder outcome (zeros unless Policy is Degrade).
  ag::DegradationStats Degradation;
  /// Hardened network error-path counters (zeros on the sim backend or
  /// when no faults are injected).
  sim::NetRecoveryStats Net;
  /// Fault-injection outcome for this shard's injector (zeros when
  /// Faults.any() is false).
  uint64_t FaultDecisions = 0;
  uint64_t FaultsInjected = 0;
  /// scheduleDigest() of the shard's injector — identical across two runs
  /// with the same (spec, seed, workload).
  uint64_t FaultDigest = 0;
};

/// Whole-cluster outcome.
struct ClusterResult {
  std::vector<ShardResult> Shards;
  ag::MergeStats Merge;
  /// Slowest shard's virtual serving time (microseconds).
  uint64_t MaxVirtualTimeUs = 0;
  /// TotalRequests / MaxVirtualTime — the cluster's aggregate virtual
  /// throughput (requests per virtual second).
  double VirtualThroughput = 0;
  /// Wall time of the whole run (all loops + merge), seconds.
  double WallSeconds = 0;
  uint64_t TotalCompleted = 0;
  uint64_t TotalErrors = 0;
  /// Merged warnings as resolved "Category: message (file:line)" strings,
  /// sorted (symbol ids are interleaving-dependent; strings are not).
  std::vector<std::string> Warnings;
  /// Wire-load outcome (real backends only; zeros on the sim backend).
  acmeair::LoadStats Wire;
  /// Kernel-syscall cost model summed over all shard loops.
  sim::KernelStats Sys;
  /// Degradation ladder merged over all shards (Policy == Degrade only).
  ag::DegradationStats Degradation;
  /// Network recovery counters summed over all shards.
  sim::NetRecoveryStats Net;
  /// Fault-injection totals over all shards.
  uint64_t FaultDecisions = 0;
  uint64_t FaultsInjected = 0;
};

/// Runs the cluster. Single-shot: construct, run(), then inspect the
/// merged graph.
class ClusterHarness {
public:
  explicit ClusterHarness(ClusterConfig Config) : Config(Config) {}

  ClusterResult run();

  /// Ends a ServeOnly run: the serving loops drain and run() returns.
  /// Async-signal-safe (a plain atomic store), so a SIGINT handler may
  /// call it directly. No effect on non-ServeOnly runs.
  void stop() { StopServing.store(true, std::memory_order_release); }

  /// The merged Async Graph (valid after run()).
  const ag::AsyncGraph &merged() const { return Merged.merged(); }
  const ag::MergeStats &mergeStats() const { return Merged.stats(); }

private:
  ClusterConfig Config;
  ag::ShardedGraph Merged;
  std::atomic<bool> StopServing{false};
};

/// Formats a merged graph's warnings as sorted resolved strings (also used
/// by tests to compare single-loop vs merged warning sets).
std::vector<std::string> resolveWarnings(const ag::AsyncGraph &G);

} // namespace cluster
} // namespace asyncg

#endif // ASYNCG_APPS_CLUSTER_HARNESS_H
