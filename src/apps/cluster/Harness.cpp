//===- Harness.cpp - N-loop AcmeAir cluster harness ---------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/cluster/Harness.h"

#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"
#include "node/Cluster.h"

#ifdef __linux__
#include "sim/EpollNetwork.h"
#include "sim/RealKernel.h"
#endif

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

using namespace asyncg;
using namespace asyncg::cluster;
using namespace asyncg::jsrt;

namespace {

/// Everything one shard owns. Created on the shard's thread (the runtime
/// and loop are single-threaded); kept alive by the harness until the
/// graphs have been merged.
struct ShardState {
  std::unique_ptr<Runtime> RT;
  std::unique_ptr<acmeair::AcmeAirApp> App;
  std::unique_ptr<acmeair::WorkloadDriver> Driver;
  std::unique_ptr<ag::AsyncGBuilder> Builder;
  std::unique_ptr<detect::DetectorSuite> Detectors;
  std::unique_ptr<ag::AsyncPipeline> Pipeline;
  std::unique_ptr<instr::TraceRecorder> Recorder;
  std::unique_ptr<node::cluster::Worker> Worker;
  /// Set once the shard's listener is bound (epoll mode: the harness only
  /// starts wire load when every SO_REUSEPORT socket is in the group).
  std::atomic<bool> Ready{false};
#ifdef __linux__
  /// The shard's real kernel (wire mode only) — the harness's handle for
  /// requestStop() once the wire load completes.
  std::atomic<sim::RealKernel *> RK{nullptr};
#endif
  ShardResult Result;
};

void runShard(const ClusterConfig &Cfg, sim::ClusterKernel &Kernel,
              uint32_t S, int Clients, uint64_t Requests, ShardState &St) {
  RuntimeConfig RC;
  RC.Shard = S;
  RC.Backend = Cfg.Backend;
  RC.Faults = Cfg.Faults;
  // Per-shard injector seed: decision order inside one loop is
  // deterministic, so a derived seed per shard makes the whole cluster's
  // fault schedule a pure function of (spec, FaultSeed).
  RC.FaultSeed = Cfg.FaultSeed + static_cast<uint64_t>(S) * 7919;
  St.RT = std::make_unique<Runtime>(RC);
  Runtime &RT = *St.RT;

#ifdef __linux__
  if (Cfg.Backend != sim::KernelBackend::Sim) {
    // realKernel() unwraps a FaultKernel decorator when faults are on.
    auto *RK = static_cast<sim::RealKernel *>(&RT.realKernel());
    St.RK.store(RK, std::memory_order_release);
    // Cross-loop posts must reach a loop blocked in epoll_wait or
    // io_uring_enter, where the cluster condvar cannot; wakeup() writes
    // the kernel's eventfd.
    if (Cfg.Loops > 1)
      Kernel.setWakeHook(S, [RK] { RK->wakeup(); });
  }
#endif

  acmeair::AppConfig ACfg;
  ACfg.Port = Cfg.Port;
  ACfg.UsePromises = Cfg.UsePromises;
  St.App = std::make_unique<acmeair::AcmeAirApp>(RT, ACfg);

  if (Requests > 0 && Clients > 0) {
    acmeair::WorkloadConfig WCfg;
    WCfg.Clients = Clients;
    WCfg.TotalRequests = Requests;
    WCfg.Seed = Cfg.Seed + static_cast<uint64_t>(S) * 7919;
    St.Driver = std::make_unique<acmeair::WorkloadDriver>(RT, ACfg.Port,
                                                          WCfg);
  }

  if (Cfg.Instrument) {
    St.Builder = std::make_unique<ag::AsyncGBuilder>();
    St.Detectors = std::make_unique<detect::DetectorSuite>();
    St.Detectors->attachTo(*St.Builder);
    if (Cfg.Mode == ag::PipelineMode::Async) {
      ag::PipelineConfig PCfg;
      PCfg.Drain = ag::DrainMode::Deferred;
      PCfg.RingCapacity = Cfg.RingCapacity;
      PCfg.SampleBudgetPct = Cfg.SampleBudgetPct;
      PCfg.Policy = Cfg.Policy;
      St.Pipeline = std::make_unique<ag::AsyncPipeline>(*St.Builder, PCfg);
      RT.hooks().attach(St.Pipeline.get());
    } else {
      RT.hooks().attach(St.Builder.get());
    }
  }

  if (!Cfg.RecordDir.empty()) {
    St.Recorder = std::make_unique<instr::TraceRecorder>();
    std::string Path =
        Cfg.RecordDir + "/shard" + std::to_string(S) + ".agtrace";
    // Non-zero shards lead their stream with a ShardInfo record so an
    // offline ShardedGraph merge can reassemble the cluster.
    if (St.Recorder->open(Path, S, Cfg.TraceVer))
      RT.hooks().attach(St.Recorder.get());
    else
      St.Recorder.reset();
  }

  if (Cfg.Loops > 1) {
    St.Worker = std::make_unique<node::cluster::Worker>(RT, Kernel);
    RT.setLoopPort(St.Worker.get());
  }

  // Harness-level registrations use stable "cluster.js" locations rather
  // than JSLOC: graph labels and warnings then name the simulated script,
  // and the 1-loop merged graph stays byte-identical to a classic
  // single-loop build that starts the app from the same location.
  Function Main = RT.makeBuiltin("main", [&](Runtime &R, const CallArgs &) {
    St.App->start(JSLINE("cluster.js", 1));
    St.Ready.store(true, std::memory_order_release);
    if (St.Driver)
      St.Driver->start();

    if (St.Worker && Cfg.Gossip) {
      // Worker-to-worker gossip: each loop broadcasts its served-count to
      // the next loop on a re-arming timer for as long as its own serving
      // window is open (bounded by GossipRounds). The listener keeps every
      // delivery's emit live.
      node::cluster::Worker *W = St.Worker.get();
      acmeair::AcmeAirApp *App = St.App.get();
      acmeair::WorkloadDriver *Driver = St.Driver.get();
      Function OnMsg = R.makeFunction(
          "onGossip", JSLINE("cluster.js", 10),
          [](Runtime &, const CallArgs &) { return Completion::normal(); });
      R.emitterOn(JSLINE("cluster.js", 11), W->channel(), "message", OnMsg);

      uint32_t Next = (S + 1) % Cfg.Loops;
      auto Rounds = std::make_shared<int>(Cfg.GossipRounds);
      auto Tick = std::make_shared<Function>();
      uint64_t Target = Requests;
      *Tick = R.makeFunction(
          "gossip", JSLINE("cluster.js", 12),
          [W, App, Driver, Rounds, Tick, Next, Target,
           Interval = Cfg.GossipIntervalMs](Runtime &R2, const CallArgs &) {
            W->send(JSLINE("cluster.js", 13), Next,
                    "served=" + std::to_string(App->served()));
            bool Serving = Driver && Driver->completed() < Target;
            if (--*Rounds > 0 && Serving)
              R2.setTimeout(JSLINE("cluster.js", 14), *Tick, Interval);
            return Completion::normal();
          });
      R.setTimeout(JSLINE("cluster.js", 15), *Tick, Cfg.GossipIntervalMs);
    }
    return Completion::normal();
  });

  RT.main(Main);

  if (St.Pipeline) {
    St.Pipeline->stop();
    St.Result.PushedRecords = St.Pipeline->pushedRecords();
    St.Result.Backpressure = St.Pipeline->backpressure();
    St.Result.Sampling = St.Pipeline->sampling();
    St.Result.Degradation = St.Pipeline->degradation();
  }
  if (St.Recorder) {
    St.Recorder->finalize();
    St.Result.RecordedBytes = St.Recorder->recordBytes();
  }

  St.Result.VirtualTimeUs = RT.clock().now();
  St.Result.Sys = RT.kernel().kernelStats();
  St.Result.Served = St.App->served();
  if (St.Driver) {
    St.Result.Issued = St.Driver->issued();
    St.Result.Completed = St.Driver->completed();
    St.Result.Errors = St.Driver->errors();
  }
  if (St.Worker) {
    St.Result.Sent = St.Worker->sent();
    St.Result.Received = St.Worker->received();
  }
  if (sim::FaultInjector *Inj = RT.faultInjector()) {
    St.Result.FaultDecisions = Inj->decisions();
    St.Result.FaultsInjected = Inj->totalInjected();
    St.Result.FaultDigest = Inj->scheduleDigest();
  }
#ifdef __linux__
  if (auto *EN = dynamic_cast<sim::EpollNetwork *>(&RT.network()))
    St.Result.Net = EN->recoveryStats();
#endif
}

} // namespace

std::vector<std::string>
asyncg::cluster::resolveWarnings(const ag::AsyncGraph &G) {
  std::vector<std::string> Out;
  Out.reserve(G.warnings().size());
  for (const ag::Warning &W : G.warnings()) {
    std::string S(ag::bugCategoryName(W.Category));
    S += ": ";
    S += W.Message.view();
    S += " (";
    S += W.Loc.str();
    S += ")";
    Out.push_back(std::move(S));
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

ClusterResult ClusterHarness::run() {
  ClusterResult R;
  const uint32_t N = Config.Loops;
  // Real backends (epoll, uring) serve wire traffic: every shard binds
  // Config.Port with SO_REUSEPORT and the in-process load generator drives
  // them from this thread. In-loop WorkloadDriver clients only exist on
  // the sim backend — over real SO_REUSEPORT their connections would be
  // cross-routed to sibling shards.
  const bool WireMode = Config.Backend != sim::KernelBackend::Sim;
  if (WireMode && !sim::kernelBackendSupported(Config.Backend))
    return R;
  sim::ClusterKernel Kernel(N);

  // The balancer partitions clients round-robin; each shard's request
  // budget is proportional to its client count, remainders to low shards.
  std::vector<int> Clients(N, 0);
  std::vector<uint64_t> Requests(N, 0);
  if (!WireMode) {
    for (int C = 0; C != Config.TotalClients; ++C)
      ++Clients[Kernel.shardForClient(static_cast<uint64_t>(C))];
    uint64_t Assigned = 0;
    for (uint32_t S = 0; S != N; ++S) {
      Requests[S] = Config.TotalRequests * static_cast<uint64_t>(Clients[S]) /
                    static_cast<uint64_t>(std::max(Config.TotalClients, 1));
      Assigned += Requests[S];
    }
    if (Config.TotalClients > 0)
      for (uint32_t S = 0; Assigned < Config.TotalRequests; S = (S + 1) % N)
        if (Clients[S] > 0) {
          ++Requests[S];
          ++Assigned;
        }
  }

  std::vector<ShardState> States(N);
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  if (N == 1 && !WireMode) {
    runShard(Config, Kernel, 0, Clients[0], Requests[0], States[0]);
  } else {
    Threads.reserve(N);
    for (uint32_t S = 0; S != N; ++S)
      Threads.emplace_back([&, S] {
        runShard(Config, Kernel, S, Clients[S], Requests[S], States[S]);
      });
  }

#ifdef __linux__
  if (WireMode) {
    // SO_REUSEPORT only balances across sockets already in the group, so
    // wait for every shard's listener before the first connect.
    auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    bool AllReady = true;
    for (uint32_t S = 0; S != N && AllReady; ++S)
      while (!States[S].Ready.load(std::memory_order_acquire)) {
        if (std::chrono::steady_clock::now() >= Deadline) {
          AllReady = false;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    if (AllReady && Config.ServeOnly) {
      // External traffic (tools/agload) drives the shards; hold the loops
      // open until stop().
      while (!StopServing.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    } else if (AllReady) {
      acmeair::LoadConfig LC;
      LC.Port = Config.Port;
      LC.Connections = Config.TotalClients;
      LC.TotalRequests = Config.TotalRequests;
      LC.Seed = Config.Seed;
      if (Config.Faults.any()) {
        // Under fault injection the server sheds connections (injected
        // resets) and stretches latencies; the driver needs deadlines and
        // a retry budget or faulted requests would hang the run.
        LC.RequestTimeoutMs = 2000;
        LC.MaxRetries = 3;
      }
      acmeair::runWireLoad(LC, R.Wire);
    }
    // Load done (or never started): stop every shard loop. requestStop is
    // sticky, so a shard that has not reached its first wait still stops.
    for (uint32_t S = 0; S != N; ++S)
      if (sim::RealKernel *RK = States[S].RK.load(std::memory_order_acquire))
        RK->requestStop();
  }
#endif

  for (std::thread &T : Threads)
    T.join();

  std::vector<const ag::AsyncGraph *> Graphs;
  for (uint32_t S = 0; S != N; ++S) {
    States[S].Result.Kernel = Kernel.shardStats(S);
    if (States[S].Builder)
      Graphs.push_back(&States[S].Builder->graph());
  }
  if (!Graphs.empty())
    R.Merge = Merged.build(Graphs);
  R.WallSeconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  for (uint32_t S = 0; S != N; ++S) {
    ShardResult &SR = States[S].Result;
    R.Sys.merge(SR.Sys);
    R.Degradation.merge(SR.Degradation);
    R.Net.merge(SR.Net);
    R.FaultDecisions += SR.FaultDecisions;
    R.FaultsInjected += SR.FaultsInjected;
    R.TotalCompleted += SR.Completed;
    R.TotalErrors += SR.Errors;
    if (SR.VirtualTimeUs > R.MaxVirtualTimeUs)
      R.MaxVirtualTimeUs = SR.VirtualTimeUs;
    R.Shards.push_back(SR);
  }
  if (R.MaxVirtualTimeUs > 0)
    R.VirtualThroughput = static_cast<double>(R.TotalCompleted) /
                          (static_cast<double>(R.MaxVirtualTimeUs) / 1e6);
  if (!Graphs.empty())
    R.Warnings = resolveWarnings(Merged.merged());
  return R;
}
