//===- Runtime.h - The jsrt runtime and event loop --------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Node.js-like asynchronous runtime at the heart of this reproduction.
/// It owns the simulated kernel, the event loop with its phase queues
/// (Fig. 2 of the paper), all asynchronous APIs (nextTick, timers,
/// immediates, promises, emitters), and the instrumentation hook registry.
///
/// Semantics implemented (see DESIGN.md §3):
///  - every top-level callback dispatch is one event-loop tick;
///  - micro-task queues drain after the main tick and after every macro
///    callback, nextTick batches before promise batches, and each can
///    schedule the other;
///  - macro phases cycle timers -> I/O poll -> immediates -> close;
///  - immediates queued during the check phase run in the next loop
///    iteration, so polled I/O interleaves (paper Fig. 3(b));
///  - `emit` runs listeners synchronously; promise executors run
///    synchronously; promise reactions are micro-tasks;
///  - a configurable tick budget lets starving programs (recursive
///    nextTick, Fig. 1) terminate after the bug is observable.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_RUNTIME_H
#define ASYNCG_JSRT_RUNTIME_H

#include "instr/Hooks.h"
#include "jsrt/ApiKind.h"
#include "jsrt/Completion.h"
#include "jsrt/Dispatch.h"
#include "jsrt/Emitter.h"
#include "jsrt/Function.h"
#include "jsrt/Ids.h"
#include "jsrt/Object.h"
#include "jsrt/PhaseKind.h"
#include "jsrt/Promise.h"
#include "jsrt/TimerHeap.h"
#include "jsrt/Value.h"
#include "sim/Clock.h"
#include "sim/Fault.h"
#include "sim/FileSystem.h"
#include "sim/Kernel.h"
#include "sim/Network.h"
#include "support/SourceLocation.h"
#include "support/Statistic.h"

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace asyncg {
namespace jsrt {

/// Tunables for a runtime instance.
struct RuntimeConfig {
  /// Maximum number of event-loop ticks before the loop stops reporting
  /// starvation; 0 means unlimited. Lets non-terminating bug programs
  /// (recursive micro-tasks) finish after the bug is detectable.
  uint64_t MaxTicks = 0;

  /// One-way simulated network latency (microseconds).
  sim::SimTime NetLatencyUs = 50;

  /// Simulated file system latency (microseconds).
  sim::SimTime FsLatencyUs = 100;

  /// Node clamps setTimeout(fn, 0) to 1 ms.
  bool ClampZeroTimeout = true;

  /// Virtual time consumed by each top-level callback dispatch
  /// (microseconds). Models that computation takes time on the real
  /// loop — without it, an infinite setImmediate chain would never let a
  /// pending I/O completion become due (Fig. 3(b)'s interleaving).
  sim::SimTime TickCostUs = 1;

  /// Cluster shard number of this loop (0..MaxShardId). Every id the
  /// runtime mints is namespaced into this shard (see Ids.h), so per-shard
  /// Async Graphs never collide and merge without renaming. Shard 0 is the
  /// identity encoding: a single-loop runtime produces exactly the ids it
  /// always did.
  uint32_t Shard = 0;

  /// Which kernel implementation the loop pumps. Sim (default) is the
  /// deterministic virtual-time kernel; Epoll serves real sockets in
  /// wall-clock time (Linux only — check sim::kernelBackendSupported
  /// before constructing a runtime with it).
  sim::KernelBackend Backend = sim::KernelBackend::Sim;

  /// Wire format spoken on real sockets (Epoll backend only): Http1 maps
  /// the internal REQ/DAT/END//RES messages to real HTTP/1.1 exchanges;
  /// Framed uses a length-prefixed binary framing for non-HTTP protocols.
  sim::WireFormat Wire = sim::WireFormat::Http1;

  /// Listen backlog for real sockets (Epoll backend only).
  int ListenBacklog = 128;

  /// Deterministic fault injection (DESIGN.md §5i). When any rate is
  /// non-zero, the kernel is wrapped in a sim::FaultKernel seeded with
  /// FaultSeed (deadline jitter, spurious wakes on every backend), and the
  /// epoll network layer injects syscall-level faults (EINTR, EAGAIN,
  /// EMFILE, ENOBUFS, short writes, resets) at its accept/recv/send wrap
  /// points. The same (spec, seed, workload) replays the identical fault
  /// schedule.
  sim::FaultSpec Faults;
  uint64_t FaultSeed = 1;
};

class Runtime;

/// Cross-loop delivery port (cluster mode). A runtime with a port installed
/// pumps it once per loop iteration — delivering cross-loop messages as
/// top-level I/O ticks — and consults it instead of exiting when the loop
/// runs dry: the loop parks until another loop posts work or the whole
/// cluster quiesces. Runtimes without a port behave exactly as before.
class LoopPort {
public:
  virtual ~LoopPort();

  /// Delivers pending cross-loop work into \p RT as top-level ticks.
  /// Returns true if anything was dispatched.
  virtual bool pump(Runtime &RT) = 0;

  /// The loop has no runnable or future local work. Blocks until new
  /// cross-loop work may be available (returns true: re-check the loop) or
  /// the cluster has quiesced (returns false: proceed to normal exit).
  virtual bool waitForWork(Runtime &RT) = 0;
};

/// The runtime: object factories, asynchronous APIs, and the event loop.
class Runtime {
public:
  explicit Runtime(RuntimeConfig Config = RuntimeConfig());
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// \name Subsystems
  /// @{
  const RuntimeConfig &config() const { return Config; }
  sim::Clock &clock() { return TheClock; }
  sim::Kernel &kernel() { return *TheKernel; }

  /// The kernel with any fault-injection decorator peeled off — the
  /// backend object itself, for callers that need backend-specific access
  /// (the cluster harness casts this to the real backend type).
  sim::Kernel &realKernel();

  /// The fault decision engine, or nullptr when Config.Faults is empty.
  sim::FaultInjector *faultInjector() { return Injector.get(); }

  sim::Network &network() { return *TheNetwork; }
  sim::FileSystem &fileSystem() { return *TheFileSystem; }
  instr::HookRegistry &hooks() { return Hooks; }
  StatisticSet &stats() { return Stats; }

  /// This loop's cluster shard number (0 outside cluster mode).
  uint32_t shard() const { return Config.Shard; }

  /// Installs (or clears, with nullptr) the cross-loop delivery port. The
  /// port must outlive the loop run.
  void setLoopPort(LoopPort *P) { Port = P; }
  LoopPort *loopPort() const { return Port; }
  /// @}

  /// \name Function factories
  /// @{

  /// Creates an application-level function with a fresh identity.
  Function makeFunction(std::string Name, SourceLocation Loc,
                        FunctionBody Body);

  /// Creates an internal-library function (rendered "*" in graphs).
  Function makeBuiltin(std::string Name, FunctionBody Body);
  /// @}

  /// \name Invocation and program execution
  /// @{

  /// Calls \p F as a plain (nested) function call in the current tick.
  /// All instrumentation hooks fire. Returns the completion.
  Completion call(const Function &F, std::vector<Value> Args = {},
                  Value ThisVal = Value::undefined());

  /// Runs \p MainFn as the program's main tick (t1: main), then runs the
  /// event loop to completion. Equivalent to `node main.js`.
  void main(const Function &MainFn);

  /// Runs the event loop until no work remains, stop() is called, or the
  /// tick budget is exhausted. main() calls this; it is public so
  /// embedders (e.g. the workload driver) can pump additional work.
  void runLoop();

  /// Requests the loop to stop after the current callback.
  void stop() { StopRequested = true; }

  bool tickBudgetExhausted() const { return BudgetExhausted; }
  uint64_t tickCount() const { return TickSeq; }
  PhaseKind currentPhase() const { return CurPhase; }
  /// @}

  /// \name Self-scheduling APIs (§II-A)
  /// @{

  /// process.nextTick(fn, ...args).
  ScheduleId nextTick(SourceLocation Loc, const Function &Fn,
                      std::vector<Value> Args = {});

  /// queueMicrotask(fn): schedules on the promise micro-task queue (lower
  /// priority than nextTick, higher than all macro phases).
  ScheduleId queueMicrotask(SourceLocation Loc, const Function &Fn,
                            std::vector<Value> Args = {});

  /// setTimeout(fn, ms, ...args).
  TimerHandle setTimeout(SourceLocation Loc, const Function &Fn, double Ms,
                         std::vector<Value> Args = {});

  /// setInterval(fn, ms, ...args).
  TimerHandle setInterval(SourceLocation Loc, const Function &Fn, double Ms,
                          std::vector<Value> Args = {});

  /// clearTimeout / clearInterval. Returns false if already fired/cleared.
  bool clearTimer(TimerHandle H);

  /// setImmediate(fn, ...args).
  ImmediateHandle setImmediate(SourceLocation Loc, const Function &Fn,
                               std::vector<Value> Args = {});

  /// clearImmediate. Returns false if already fired/cleared.
  bool clearImmediate(ImmediateHandle H);
  /// @}

  /// \name Promises
  /// @{

  /// new Promise((resolve, reject) => ...). The executor runs synchronously
  /// and receives resolve/reject builtin functions.
  PromiseRef promiseCreate(SourceLocation Loc, const Function &Executor);

  /// Promise.resolve(v). If \p V is a promise, returns it unchanged.
  PromiseRef promiseResolvedWith(SourceLocation Loc, Value V);

  /// Promise.reject(v).
  PromiseRef promiseRejectedWith(SourceLocation Loc, Value V);

  /// p.then(onFulfilled[, onRejected]). Invalid handlers pass through.
  PromiseRef promiseThen(SourceLocation Loc, const PromiseRef &P,
                         const Function &OnFulfill,
                         const Function &OnReject = Function());

  /// p.catch(onRejected).
  PromiseRef promiseCatch(SourceLocation Loc, const PromiseRef &P,
                          const Function &OnReject);

  /// p.finally(onFinally). The handler receives no arguments; the derived
  /// promise settles like p (JS semantics, minus thenable subtleties).
  PromiseRef promiseFinally(SourceLocation Loc, const PromiseRef &P,
                            const Function &OnFinally);

  /// Promise.all / race / allSettled / any.
  PromiseRef promiseAll(SourceLocation Loc, std::vector<PromiseRef> Ps);
  PromiseRef promiseRace(SourceLocation Loc, std::vector<PromiseRef> Ps);
  PromiseRef promiseAllSettled(SourceLocation Loc, std::vector<PromiseRef> Ps);
  PromiseRef promiseAny(SourceLocation Loc, std::vector<PromiseRef> Ps);

  /// Explicit resolve/reject actions (what the executor's resolve/reject
  /// functions call; also usable directly for deferred-style code).
  void resolvePromise(SourceLocation Loc, const PromiseRef &P, Value V);
  void rejectPromise(SourceLocation Loc, const PromiseRef &P, Value V);

  /// `await P` support: registers \p Resume to be dispatched as a promise
  /// micro-task when P settles; Resume receives (value, isRejected).
  /// \p FnName names the continuation in graphs ("name (resumed)").
  ScheduleId promiseAwait(SourceLocation Loc, const PromiseRef &P,
                          std::string FnName,
                          std::function<void(Runtime &, Value, bool)> Resume);

  /// Creates a pending application-visible promise without an executor
  /// (used by async functions and the promise-style node APIs).
  PromiseRef promiseBare(SourceLocation Loc, std::string Name = "Promise");

  /// Resolve/reject performed by internal machinery (adoption, reaction
  /// results, async function returns): still produces a CT, flagged
  /// internal.
  void resolvePromiseInternal(const PromiseRef &P, Value V);
  void rejectPromiseInternal(const PromiseRef &P, Value V);

  /// All promises ever created (weak); for tests and end-of-run queries.
  std::vector<PromiseRef> livePromises() const;
  /// @}

  /// \name Emitters
  /// @{

  /// new EventEmitter() (or an internal library emitter when \p Internal).
  EmitterRef emitterCreate(SourceLocation Loc,
                           std::string Name = "EventEmitter",
                           bool Internal = false);

  /// e.on(event, listener). Returns the registration id.
  ScheduleId emitterOn(SourceLocation Loc, const EmitterRef &E,
                       const std::string &Event, const Function &Fn);

  /// e.once(event, listener).
  ScheduleId emitterOnce(SourceLocation Loc, const EmitterRef &E,
                         const std::string &Event, const Function &Fn);

  /// e.prependListener(event, listener).
  ScheduleId emitterPrepend(SourceLocation Loc, const EmitterRef &E,
                            const std::string &Event, const Function &Fn);

  /// Registers a listener under a custom API label. Node-layer modules use
  /// this so graphs show registrations like "L7: createServer" bound to an
  /// internal emitter's event, as in the paper's Fig. 3.
  ScheduleId emitterOnVia(SourceLocation Loc, ApiKind Api,
                          const EmitterRef &E, const std::string &Event,
                          const Function &Fn, bool Once = false);

  /// e.removeListener(event, fn). Returns true if a listener was removed;
  /// a false return is the Invalid-Listener-Removal situation.
  bool emitterRemoveListener(SourceLocation Loc, const EmitterRef &E,
                             const std::string &Event, const Function &Fn);

  /// e.removeAllListeners(event).
  void emitterRemoveAll(SourceLocation Loc, const EmitterRef &E,
                        const std::string &Event);

  /// e.emit(event, ...args). Listeners run synchronously; returns true iff
  /// there was at least one listener (a false return is a dead emit).
  bool emitterEmit(SourceLocation Loc, const EmitterRef &E,
                   const std::string &Event, std::vector<Value> Args = {});

  /// All emitters ever created (weak); for tests and end-of-run queries.
  std::vector<EmitterRef> liveEmitters() const;

  /// The process emitter (created lazily). Like Node, the loop emits
  /// 'beforeExit' on it each time it runs dry; listeners may schedule new
  /// work to keep the program alive.
  const EmitterRef &process();
  /// @}

  /// \name External (I/O) scheduling support for the node layer
  /// @{

  /// Registers an external-API callback (CR event) and returns its id.
  /// The node layer later dispatches the callback with dispatchExternal.
  ScheduleId registerExternal(SourceLocation Loc, ApiKind Api,
                              const Function &Fn, bool Once = true,
                              ObjectId BoundObj = 0,
                              std::string EventName = std::string(),
                              bool Internal = false);

  /// Dispatches a previously registered external callback as a top-level
  /// I/O-phase tick (called from kernel completion closures).
  void dispatchExternal(const Function &Fn, std::vector<Value> Args,
                        ScheduleId Sched, ApiKind Api);

  /// Dispatches internal library work (e.g. "socket data arrived: emit on
  /// the socket emitter") as a top-level I/O tick run by a builtin
  /// function named \p Name.
  void dispatchInternal(const std::string &Name,
                        std::function<void(Runtime &)> Body);

  /// Mints a trigger-action id and fires the corresponding CT-producing
  /// ApiCallEvent. Used by the node cluster layer for cross-loop sends,
  /// where the triggered execution happens on another loop: the returned
  /// id travels with the message and becomes the receiver tick's Sched,
  /// which the merge layer joins back to this CT.
  TriggerId emitExternalTrigger(SourceLocation Loc, ApiKind Api,
                                ObjectId BoundObj = 0,
                                std::string EventName = std::string(),
                                bool Internal = false);

  /// Schedules a callback on the close-handlers queue (lowest priority).
  ScheduleId scheduleCloseCallback(SourceLocation Loc, const Function &Fn,
                                   std::vector<Value> Args = {},
                                   bool Internal = true);
  /// @}

  /// \name Errors
  /// @{

  struct UncaughtError {
    Value Error;
    SourceLocation Loc;
    uint64_t Tick = 0;
  };

  const std::vector<UncaughtError> &uncaughtErrors() const {
    return Uncaught;
  }

  /// Rejected promises nobody ever handled (computed on demand).
  std::vector<PromiseRef> unhandledRejections() const;

  /// Records an uncaught error (used internally and by the node layer).
  void reportUncaught(Value Error, SourceLocation Loc);
  /// @}

  /// \name Tracked property access (data-flow hooks)
  /// @{

  /// Reads \p Key from the object value \p ObjV, firing the
  /// property-access hook. Programs that want the race analysis (§IX
  /// ongoing research) use these instead of touching Object directly.
  Value getProperty(SourceLocation Loc, const Value &ObjV,
                    const std::string &Key);

  /// Writes \p Key on the object value \p ObjV, firing the hook.
  void setProperty(SourceLocation Loc, const Value &ObjV,
                   const std::string &Key, Value V);
  /// @}

  /// Fresh object id (shared by promises/emitters; used by node-layer
  /// pseudo objects too).
  ObjectId nextObjectId() { return ++LastObjectId; }

private:
  /// A queued task for the nextTick/promise/immediate/close queues and for
  /// I/O dispatch.
  struct ScheduledTask {
    Function Fn;
    std::vector<Value> Args;
    ScheduleId Sched = 0;
    ApiKind Api = ApiKind::None;
    TriggerInfo Trigger;
    /// Promise-reaction plumbing: consumes the completion.
    std::function<void(Runtime &, Completion)> OnComplete;
    /// For clearImmediate.
    uint64_t ImmediateId = 0;
    /// Cancelled immediates stay queued but are skipped.
    bool Cancelled = false;
  };

  /// One invocation through the instrumentation hooks.
  Completion invoke(const Function &F, const CallArgs &Args,
                    const DispatchInfo &D);

  /// Dispatches one queued task as a top-level tick in \p Phase.
  void dispatchTask(ScheduledTask &T, PhaseKind Phase);

  /// Drains micro-task queues (nextTick priority) until both are empty or
  /// the budget/stop triggers.
  void drainMicrotasks();

  /// Runs one batch of the given macro phase. Return true if any callback
  /// ran.
  bool runTimersPhase();
  bool runIoPhase();
  bool runCheckPhase();
  bool runClosePhase();

  /// True while any queue, timer, or kernel operation can still produce
  /// work.
  bool hasMacroWork() const;

  /// Consumes one unit of tick budget; returns false when exhausted.
  bool takeTickBudget();

  /// Emits 'beforeExit' when the drained loop has listeners for it and it
  /// was not already emitted since the last dispatched work. Returns true
  /// if it ran (the loop should re-check for work).
  bool tryBeforeExit();

  /// Compacts the weak object registries, firing an ObjectReleaseEvent for
  /// every tracked promise/emitter whose last strong reference was dropped
  /// since the previous sweep. Runs once per loop iteration and once
  /// before loop end; always compacts (bounding registry growth) even with
  /// no analyses attached.
  void sweepReleasedObjects();

  ScheduleId newSchedule() { return ++LastScheduleId; }
  TriggerId newTrigger() { return ++LastTriggerId; }

  /// \name Promise internals
  /// @{
  PromiseRef promiseNew(SourceLocation Loc, bool Internal,
                        ObjectId Parent = 0,
                        ApiKind Relation = ApiKind::None,
                        std::string Name = "Promise");
  PromiseRef promiseReactionJob(SourceLocation Loc, ApiKind Via,
                                const PromiseRef &P, const Function &OnF,
                                const Function &OnR, bool WantDerived,
                                bool Internal);
  void resolveImpl(SourceLocation Loc, const PromiseRef &P, Value V,
                   bool Reject, bool Internal);
  void settle(const PromiseRef &P, bool Reject, Value V, SourceLocation Loc,
              bool Internal, TriggerId Trig);
  void settleFromAdoption(const PromiseRef &P, bool Reject, Value V);
  void enqueueReaction(const PromiseRef &Source, PromiseReaction R,
                       TriggerId Trig);
  void adoptPromise(const PromiseRef &Outer, const PromiseRef &Inner);
  PromiseRef combinator(SourceLocation Loc, ApiKind Api,
                        std::vector<PromiseRef> Ps);
  /// @}

  ScheduleId addListener(SourceLocation Loc, ApiKind Api, const EmitterRef &E,
                         const std::string &Event, const Function &Fn,
                         bool Once, bool Prepend);

  RuntimeConfig Config;
  LoopPort *Port = nullptr;
  sim::Clock TheClock;
  /// Declared before the kernel: the FaultKernel decorator and the network
  /// layer hold references into it, so it must outlive both.
  std::unique_ptr<sim::FaultInjector> Injector;
  /// Kernel/network are backend-polymorphic (Sim or Epoll); the file
  /// system always submits through whichever kernel is installed.
  std::unique_ptr<sim::Kernel> TheKernel;
  std::unique_ptr<sim::Network> TheNetwork;
  std::unique_ptr<sim::FileSystem> TheFileSystem;
  instr::HookRegistry Hooks;
  StatisticSet Stats;

  // Queues (Fig. 2(a)).
  std::deque<ScheduledTask> NextTickQueue;
  std::deque<ScheduledTask> PromiseQueue;
  std::deque<ScheduledTask> ImmediateQueue;
  std::deque<ScheduledTask> CloseQueue;
  TimerHeap Timers;

  // Id generators.
  uint64_t LastFunctionId = 0;
  ObjectId LastObjectId = 0;
  ScheduleId LastScheduleId = 0;
  TriggerId LastTriggerId = 0;
  uint64_t LastTimerId = 0;
  uint64_t LastTimerSeq = 0;
  uint64_t LastImmediateId = 0;

  // Loop state.
  PhaseKind CurPhase = PhaseKind::Main;
  uint64_t TickSeq = 0;
  uint64_t CallDepth = 0;
  bool StopRequested = false;
  bool BudgetExhausted = false;
  bool LoopEndFired = false;

  std::vector<UncaughtError> Uncaught;

  /// Weak registries of every tracked object, in creation order. The id is
  /// stored beside the weak_ptr so a release can still be reported after
  /// the object is gone; sweepReleasedObjects() compacts both vectors once
  /// per loop iteration, firing ObjectReleaseEvents in creation order (a
  /// deterministic point, so recorded traces replay identically).
  struct TrackedPromise {
    ObjectId Id;
    std::weak_ptr<PromiseData> Ref;
  };
  struct TrackedEmitter {
    ObjectId Id;
    std::weak_ptr<EmitterData> Ref;
  };
  std::vector<TrackedPromise> AllPromises;
  std::vector<TrackedEmitter> AllEmitters;

  /// Interval timers cleared while their callback was running.
  std::set<uint64_t> CancelledTimers;
  /// Lazily created internal micro-task body for handler-less reactions.
  Function PassthroughFn;
  /// The lazily created process emitter ('beforeExit').
  EmitterRef ProcessEmitter;
  /// True once 'beforeExit' was emitted with no work dispatched since.
  bool BeforeExitEmitted = false;
};

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_RUNTIME_H
