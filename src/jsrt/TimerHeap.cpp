//===- TimerHeap.cpp - setTimeout/setInterval timer store -------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "jsrt/TimerHeap.h"

#include <algorithm>
#include <cassert>

using namespace asyncg;
using namespace asyncg::jsrt;

void TimerHeap::add(TimerEntry E) {
  assert(E.Id != 0 && "timer id must be assigned");
  auto Key = std::make_pair(E.Due, E.Id);
  ById[E.Id] = Key;
  ByDeadline.emplace(Key, std::move(E));
}

bool TimerHeap::cancel(uint64_t Id) {
  auto It = ById.find(Id);
  if (It == ById.end())
    return false;
  ByDeadline.erase(It->second);
  ById.erase(It);
  return true;
}

sim::SimTime TimerHeap::nextDeadline() const {
  if (ByDeadline.empty())
    return sim::NoDeadline;
  return ByDeadline.begin()->first.first;
}

std::vector<TimerEntry> TimerHeap::takeDue(sim::SimTime Now) {
  std::vector<TimerEntry> Due;
  while (!ByDeadline.empty() && ByDeadline.begin()->first.first <= Now) {
    auto It = ByDeadline.begin();
    ById.erase(It->second.Id);
    Due.push_back(std::move(It->second));
    ByDeadline.erase(It);
  }
  // Within one batch, earlier-registered timers run first (see file
  // comment); deadlines only gate *whether* a timer is in the batch.
  std::sort(Due.begin(), Due.end(),
            [](const TimerEntry &A, const TimerEntry &B) {
              return A.Seq < B.Seq;
            });
  return Due;
}
