//===- PhaseKind.h - Event-loop phase identifiers ---------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-loop phases of §II-B / Fig. 2 of the paper. Every event-loop
/// tick (top-level callback dispatch) belongs to exactly one phase; the
/// Async Graph names its ticks after these phases (e.g. "t3: io").
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_PHASEKIND_H
#define ASYNCG_JSRT_PHASEKIND_H

namespace asyncg {
namespace jsrt {

/// Event-loop phase a callback is dispatched from.
enum class PhaseKind {
  Main,         ///< The initial execution of the program (t1: main).
  NextTick,     ///< process.nextTick micro-task (highest priority).
  PromiseMicro, ///< Promise-reaction micro-task.
  Timers,       ///< setTimeout / setInterval callbacks.
  Io,           ///< External OS events (poll phase).
  Check,        ///< setImmediate callbacks (the "immediates" phase).
  Close,        ///< Close handlers (lowest priority).
};

/// Lowercase phase name as used in tick labels ("t2: nexttick").
inline const char *phaseKindName(PhaseKind K) {
  switch (K) {
  case PhaseKind::Main:
    return "main";
  case PhaseKind::NextTick:
    return "nexttick";
  case PhaseKind::PromiseMicro:
    return "promise";
  case PhaseKind::Timers:
    return "timers";
  case PhaseKind::Io:
    return "io";
  case PhaseKind::Check:
    return "immediate";
  case PhaseKind::Close:
    return "close";
  }
  return "unknown";
}

/// True for the two micro-task phases, which have priority over all other
/// queues and can be scheduled between any other phases (paper Fig. 2(b)).
inline bool isMicrotaskPhase(PhaseKind K) {
  return K == PhaseKind::NextTick || K == PhaseKind::PromiseMicro;
}

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_PHASEKIND_H
