//===- AsyncAwait.h - async/await via C++20 coroutines ----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ECMAScript-8 async/await modelled with C++20 coroutines, covering the
/// paper's claim that AsyncG "is compatible with the latest ECMAScript
/// language features" including async/await (Table II).
///
/// An async function is a C++ coroutine returning JsAsync whose first
/// parameter is `Runtime &`; an optional second `AsyncOrigin` parameter
/// names it and gives it a source location:
///
/// \code
///   JsAsync fetchUser(Runtime &RT, AsyncOrigin, Value Id) {
///     Value Row = co_await Await(db.get(Id));          // suspends
///     AwaitResult R = co_await TryAwait(riskyOp(RT));  // "try { await }"
///     if (R.Rejected)
///       co_return Completion::thrown(R.V);
///     co_return Row;                                   // resolves result
///   }
/// \endcode
///
/// Calling an async function immediately runs its body up to the first
/// await (JS semantics) and returns a JsAsync wrapping the result promise.
///
/// Toolchain note: some GCC releases miscompile braced initializer lists
/// inside coroutine bodies ("array used as initializer"); build vectors
/// with push_back inside async functions instead of `{a, b}` literals.
/// Each `co_await` registers an Await-kind reaction (a CR in the Async
/// Graph); the continuation is dispatched as a promise micro-task, so
/// resumptions appear as CE nodes in their own promise ticks. A rejected
/// plain `Await` rejects the async function's result promise and abandons
/// the rest of the body, exactly like an uncaught `await` rejection.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_ASYNCAWAIT_H
#define ASYNCG_JSRT_ASYNCAWAIT_H

#include "jsrt/Runtime.h"

#include <coroutine>
#include <string>
#include <type_traits>
#include <utility>

namespace asyncg {
namespace jsrt {

/// Optional name/location for an async function; pass as the second
/// coroutine parameter.
struct AsyncOrigin {
  std::string Name = "async function";
  SourceLocation Loc;
};

/// Result of TryAwait: the settled value and whether it was a rejection.
struct AwaitResult {
  Value V;
  bool Rejected = false;
};

/// Coroutine return object for async functions.
class JsAsync {
public:
  struct promise_type {
    Runtime *RT = nullptr;
    PromiseRef Result;
    std::string Name = "async function";
    SourceLocation Loc;

    template <typename... ArgsT>
    explicit promise_type(Runtime &R, ArgsT &&...Args) : RT(&R) {
      applyOrigin(std::forward<ArgsT>(Args)...);
      Result = R.promiseBare(Loc, Name);
    }

    JsAsync get_return_object() { return JsAsync(Result); }

    /// The body runs synchronously up to the first await (JS semantics).
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }

    /// co_return settles the result promise: normal completions resolve
    /// (adopting returned promises), Throw completions reject.
    void return_value(Completion C) {
      if (C.isThrow())
        RT->rejectPromiseInternal(Result, C.takeValue());
      else
        RT->resolvePromiseInternal(Result, C.takeValue());
    }

    void unhandled_exception() { std::terminate(); }

  private:
    void applyOrigin() {}
    template <typename First, typename... Rest>
    void applyOrigin(First &&F, Rest &&...) {
      if constexpr (std::is_convertible_v<std::decay_t<First>, AsyncOrigin>) {
        AsyncOrigin O = std::forward<First>(F);
        Name = std::move(O.Name);
        Loc = std::move(O.Loc);
      }
    }
  };

  explicit JsAsync(PromiseRef Result) : Result(std::move(Result)) {}

  /// The promise the async function will settle.
  const PromiseRef &promise() const { return Result; }
  Value toValue() const { return Value::promise(Result); }

private:
  PromiseRef Result;
};

/// `co_await Await(p)`: yields the fulfillment value; a rejection rejects
/// the async function's result promise and abandons the rest of the body.
class Await {
public:
  explicit Await(PromiseRef P, SourceLocation Loc = SourceLocation())
      : P(std::move(P)), Loc(std::move(Loc)) {}

  /// Awaiting a plain value behaves like awaiting Promise.resolve(value).
  explicit Await(const Value &V, SourceLocation Loc = SourceLocation())
      : Loc(std::move(Loc)) {
    if (V.isPromise())
      P = V.asPromise();
    else
      Plain = V;
  }

  /// Even settled promises resume via a micro-task (JS semantics).
  bool await_ready() const noexcept { return false; }

  void await_suspend(std::coroutine_handle<JsAsync::promise_type> H) {
    JsAsync::promise_type &PT = H.promise();
    Runtime &RT = *PT.RT;
    if (!P)
      P = RT.promiseResolvedWith(SourceLocation::internal(), Plain);
    PromiseRef ResultP = PT.Result;
    SourceLocation Site = Loc.isValid() ? Loc : PT.Loc;
    RT.promiseAwait(Site, P, PT.Name,
                    [this, H, ResultP](Runtime &R, Value V, bool Rejected) {
                      if (Rejected) {
                        R.rejectPromiseInternal(ResultP, std::move(V));
                        H.destroy();
                        return;
                      }
                      Result = std::move(V);
                      H.resume();
                    });
  }

  Value await_resume() { return std::move(Result); }

private:
  PromiseRef P;
  Value Plain;
  SourceLocation Loc;
  Value Result;
};

/// `co_await TryAwait(p)`: like `try { await p } catch`, yields an
/// AwaitResult so the async function can handle rejections itself.
class TryAwait {
public:
  explicit TryAwait(PromiseRef P, SourceLocation Loc = SourceLocation())
      : P(std::move(P)), Loc(std::move(Loc)) {}

  bool await_ready() const noexcept { return false; }

  void await_suspend(std::coroutine_handle<JsAsync::promise_type> H) {
    JsAsync::promise_type &PT = H.promise();
    Runtime &RT = *PT.RT;
    SourceLocation Site = Loc.isValid() ? Loc : PT.Loc;
    RT.promiseAwait(Site, P, PT.Name,
                    [this, H](Runtime &, Value V, bool Rejected) {
                      Result.V = std::move(V);
                      Result.Rejected = Rejected;
                      H.resume();
                    });
  }

  AwaitResult await_resume() { return std::move(Result); }

private:
  PromiseRef P;
  SourceLocation Loc;
  AwaitResult Result;
};

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_ASYNCAWAIT_H
