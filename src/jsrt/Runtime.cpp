//===- Runtime.cpp - The jsrt runtime and event loop -------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "jsrt/Runtime.h"

#include "support/Format.h"

#ifdef __linux__
#include "sim/EpollKernel.h"
#include "sim/EpollNetwork.h"
#include "sim/UringKernel.h"
#include "sim/UringNetwork.h"
#endif

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <set>

using namespace asyncg;
using namespace asyncg::jsrt;

Runtime::Runtime(RuntimeConfig Config) : Config(Config) {
  if (Config.Backend == sim::KernelBackend::Epoll) {
#ifdef __linux__
    auto EK = std::make_unique<sim::EpollKernel>(TheClock);
    if (!EK->valid()) {
      std::fprintf(stderr, "jsrt: cannot create epoll kernel (epoll_create1 "
                           "failed)\n");
      std::abort();
    }
    TheNetwork = std::make_unique<sim::EpollNetwork>(
        *EK, Config.NetLatencyUs, Config.Wire, Config.ListenBacklog);
    TheKernel = std::move(EK);
#else
    // CLIs gate on sim::kernelBackendAvailable and report cleanly; an
    // embedder reaching here on a non-Linux build is a programming error.
    std::fprintf(stderr,
                 "jsrt: epoll kernel backend requested on a non-Linux "
                 "build (check sim::kernelBackendAvailable first)\n");
    std::abort();
#endif
  } else if (Config.Backend == sim::KernelBackend::Uring) {
#ifdef __linux__
    auto UK = std::make_unique<sim::UringKernel>(TheClock);
    if (!UK->valid()) {
      std::string Why;
      sim::kernelBackendAvailable(sim::KernelBackend::Uring, &Why);
      std::fprintf(stderr, "jsrt: cannot create io_uring kernel (%s)\n",
                   Why.c_str());
      std::abort();
    }
    TheNetwork = std::make_unique<sim::UringNetwork>(
        *UK, Config.NetLatencyUs, Config.Wire, Config.ListenBacklog);
    TheKernel = std::move(UK);
#else
    std::fprintf(stderr,
                 "jsrt: io_uring kernel backend requested on a non-Linux "
                 "build (check sim::kernelBackendAvailable first)\n");
    std::abort();
#endif
  } else {
    TheKernel = std::make_unique<sim::Kernel>(TheClock);
    TheNetwork =
        std::make_unique<sim::Network>(*TheKernel, Config.NetLatencyUs);
  }
  if (Config.Faults.any()) {
    Injector = std::make_unique<sim::FaultInjector>(Config.Faults,
                                                    Config.FaultSeed);
#ifdef __linux__
    if (auto *EN = dynamic_cast<sim::EpollNetwork *>(TheNetwork.get()))
      EN->setFaultInjector(Injector.get());
#endif
    // Wrap after the network is built: the network keeps its concrete
    // reference to the real backend (delivery submits bypass jitter), while
    // the loop and the file system see the decorated surface.
    TheKernel =
        std::make_unique<sim::FaultKernel>(std::move(TheKernel), *Injector);
  }
  TheFileSystem =
      std::make_unique<sim::FileSystem>(*TheKernel, Config.FsLatencyUs);
  assert(Config.Shard <= MaxShardId && "shard number out of range");
  // Namespace every id generator into this loop's shard (Ids.h). Shard 0's
  // base is 0, so single-loop runtimes mint exactly the ids they always did.
  uint64_t Base = shardIdBase(Config.Shard);
  LastFunctionId = Base;
  LastObjectId = Base;
  LastScheduleId = Base;
  LastTriggerId = Base;
  LastTimerId = Base;
  LastImmediateId = Base;
}

Runtime::~Runtime() = default;

sim::Kernel &Runtime::realKernel() {
  if (auto *FK = dynamic_cast<sim::FaultKernel *>(TheKernel.get()))
    return FK->inner();
  return *TheKernel;
}

LoopPort::~LoopPort() = default;

//===----------------------------------------------------------------------===//
// Function factories and invocation
//===----------------------------------------------------------------------===//

Function Runtime::makeFunction(std::string Name, SourceLocation Loc,
                               FunctionBody Body) {
  auto Data = std::make_shared<FunctionData>();
  Data->Id = ++LastFunctionId;
  Data->Name = std::move(Name);
  Data->Loc = std::move(Loc);
  Data->IsBuiltin = false;
  Data->Body = std::move(Body);
  return Function(std::move(Data));
}

Function Runtime::makeBuiltin(std::string Name, FunctionBody Body) {
  auto Data = std::make_shared<FunctionData>();
  Data->Id = ++LastFunctionId;
  Data->Name = std::move(Name);
  Data->Loc = SourceLocation::internal();
  Data->IsBuiltin = true;
  Data->Body = std::move(Body);
  return Function(std::move(Data));
}

Completion Runtime::invoke(const Function &F, const CallArgs &Args,
                           const DispatchInfo &D) {
  assert(F.isValid() && "invoking an invalid function");
  assert(F.ref()->Body && "function has no body");
  bool Instrumented = !Hooks.empty();
  if (Instrumented)
    Hooks.fireFunctionEnter(instr::FunctionEnterEvent{F, Args, D});
  ++CallDepth;
  Completion Result = F.ref()->Body(*this, Args);
  --CallDepth;
  if (Instrumented)
    Hooks.fireFunctionExit(instr::FunctionExitEvent{F, Result, D});
  return Result;
}

Completion Runtime::call(const Function &F, std::vector<Value> Args,
                         Value ThisVal) {
  DispatchInfo D;
  D.Phase = CurPhase;
  D.TopLevel = false;
  D.TickSeq = TickSeq;
  return invoke(F, CallArgs(std::move(ThisVal), std::move(Args)), D);
}

void Runtime::reportUncaught(Value Error, SourceLocation Loc) {
  Uncaught.push_back(UncaughtError{Error, Loc, TickSeq});
  if (!Hooks.empty())
    Hooks.fireUncaughtError(
        instr::UncaughtErrorEvent{Uncaught.back().Error, Loc, TickSeq});
}

//===----------------------------------------------------------------------===//
// Event loop
//===----------------------------------------------------------------------===//

bool Runtime::takeTickBudget() {
  if (Config.MaxTicks != 0 && TickSeq >= Config.MaxTicks) {
    BudgetExhausted = true;
    StopRequested = true;
    return false;
  }
  return true;
}

void Runtime::dispatchTask(ScheduledTask &T, PhaseKind Phase) {
  if (T.Cancelled)
    return;
  if (!takeTickBudget())
    return;
  assert(CallDepth == 0 && "top-level dispatch while a callback is running");
  CurPhase = Phase;
  ++TickSeq;
  Stats.add("jsrt.ticks");

  DispatchInfo D;
  D.Phase = Phase;
  D.TopLevel = true;
  D.Sched = T.Sched;
  D.Api = T.Api;
  D.Trigger = T.Trigger;
  D.TickSeq = TickSeq;

  Completion C = invoke(T.Fn, CallArgs(std::move(T.Args)), D);
  // Executing the callback consumed (virtual) time, and any dispatched
  // work re-arms the 'beforeExit' emission. Real-time kernels advance the
  // clock from the OS clock instead; charging a virtual tick cost on top
  // would run the clock ahead of wall time and fire timers early.
  if (!TheKernel->isRealTime())
    TheClock.advanceBy(Config.TickCostUs);
  BeforeExitEmitted = false;
  if (T.OnComplete) {
    T.OnComplete(*this, std::move(C));
    return;
  }
  if (C.isThrow())
    reportUncaught(C.takeValue(), T.Fn.loc());
}

void Runtime::drainMicrotasks() {
  // nextTick batches have priority over promise batches, and each can
  // schedule the other (paper Fig. 2(b)).
  while (!StopRequested) {
    if (!NextTickQueue.empty()) {
      ScheduledTask T = std::move(NextTickQueue.front());
      NextTickQueue.pop_front();
      dispatchTask(T, PhaseKind::NextTick);
      continue;
    }
    if (!PromiseQueue.empty()) {
      ScheduledTask T = std::move(PromiseQueue.front());
      PromiseQueue.pop_front();
      dispatchTask(T, PhaseKind::PromiseMicro);
      continue;
    }
    break;
  }
}

bool Runtime::hasMacroWork() const {
  if (!Timers.empty() || TheKernel->hasPending() || !CloseQueue.empty())
    return true;
  for (const ScheduledTask &T : ImmediateQueue)
    if (!T.Cancelled)
      return true;
  return false;
}

bool Runtime::runTimersPhase() {
  std::vector<TimerEntry> Due = Timers.takeDue(TheClock.now());
  bool Ran = false;
  for (TimerEntry &E : Due) {
    if (StopRequested) {
      // Put unprocessed timers back so a resumed loop can run them.
      Timers.add(std::move(E));
      continue;
    }
    ScheduledTask T;
    T.Fn = E.Fn;
    T.Args = E.Args;
    T.Sched = E.Sched;
    T.Api = E.Api;
    dispatchTask(T, PhaseKind::Timers);
    Ran = true;
    drainMicrotasks();
    if (E.IntervalUs != 0 && !CancelledTimers.count(E.Id)) {
      E.Due = TheClock.now() + E.IntervalUs;
      Timers.add(E);
    }
    CancelledTimers.erase(E.Id);
  }
  return Ran;
}

bool Runtime::runIoPhase() {
  std::vector<std::function<void()>> Due = TheKernel->takeDue();
  bool Ran = false;
  for (auto &Action : Due) {
    if (StopRequested)
      break;
    Action();
    Ran = true;
    drainMicrotasks();
  }
  return Ran;
}

bool Runtime::runCheckPhase() {
  // Only immediates queued before this phase run now; immediates scheduled
  // inside an immediate callback run in the next loop iteration, letting
  // I/O interleave (paper Fig. 3(b)).
  size_t Count = ImmediateQueue.size();
  bool Ran = false;
  for (size_t I = 0; I != Count && !StopRequested; ++I) {
    ScheduledTask T = std::move(ImmediateQueue.front());
    ImmediateQueue.pop_front();
    if (T.Cancelled)
      continue;
    dispatchTask(T, PhaseKind::Check);
    Ran = true;
    drainMicrotasks();
  }
  return Ran;
}

bool Runtime::runClosePhase() {
  size_t Count = CloseQueue.size();
  bool Ran = false;
  for (size_t I = 0; I != Count && !StopRequested; ++I) {
    ScheduledTask T = std::move(CloseQueue.front());
    CloseQueue.pop_front();
    dispatchTask(T, PhaseKind::Close);
    Ran = true;
    drainMicrotasks();
  }
  return Ran;
}

void Runtime::sweepReleasedObjects() {
  // Stable two-finger compaction in creation order. Firing is pure
  // observation: weak_ptr::expired() reads the control block, nothing is
  // destroyed here, so the vectors stay consistent under the loop.
  size_t W = 0;
  for (size_t I = 0; I != AllPromises.size(); ++I) {
    if (!AllPromises[I].Ref.expired()) {
      if (W != I)
        AllPromises[W] = std::move(AllPromises[I]);
      ++W;
      continue;
    }
    if (!Hooks.empty()) {
      instr::ObjectReleaseEvent E;
      E.Obj = AllPromises[I].Id;
      E.IsPromise = true;
      Hooks.fireObjectRelease(E);
    }
  }
  AllPromises.resize(W);

  W = 0;
  for (size_t I = 0; I != AllEmitters.size(); ++I) {
    if (!AllEmitters[I].Ref.expired()) {
      if (W != I)
        AllEmitters[W] = std::move(AllEmitters[I]);
      ++W;
      continue;
    }
    if (!Hooks.empty()) {
      instr::ObjectReleaseEvent E;
      E.Obj = AllEmitters[I].Id;
      E.IsPromise = false;
      Hooks.fireObjectRelease(E);
    }
  }
  AllEmitters.resize(W);
}

void Runtime::runLoop() {
  while (!StopRequested) {
    // Turn boundary: a safe point between dispatches. Transports flush
    // producer-side batches and re-evaluate sampling budgets here.
    if (!Hooks.empty())
      Hooks.fireTickBoundary(instr::TickBoundaryEvent{TickSeq});
    sweepReleasedObjects();
    drainMicrotasks();
    if (StopRequested)
      break;
    // Cluster mode: deliver cross-loop messages as top-level I/O ticks
    // before deciding whether the loop has work.
    if (Port && Port->pump(*this)) {
      drainMicrotasks();
      if (StopRequested)
        break;
    }
    if (!hasMacroWork()) {
      // The loop ran dry locally. In cluster mode, park until another loop
      // posts work or the whole cluster quiesces; only a quiesced cluster
      // proceeds to 'beforeExit' / exit.
      if (Port && Port->waitForWork(*this))
        continue;
      // Give 'beforeExit' listeners a chance to schedule more work (Node
      // semantics), once per drain.
      if (tryBeforeExit())
        continue;
      break;
    }

    // If nothing is due yet, wait for the next deadline: the sim kernel
    // advances virtual time in one jump, the epoll kernel blocks in
    // epoll_wait (both model libuv blocking in poll with a timeout).
    sim::SimTime Now = TheClock.now();
    sim::SimTime TimerNext = Timers.nextDeadline();
    sim::SimTime KernelNext = TheKernel->nextDeadline();
    bool ImmediatePending = false;
    for (const ScheduledTask &T : ImmediateQueue)
      if (!T.Cancelled) {
        ImmediatePending = true;
        break;
      }
    bool AnythingDueNow = (TimerNext != sim::NoDeadline && TimerNext <= Now) ||
                          (KernelNext != sim::NoDeadline && KernelNext <= Now) ||
                          ImmediatePending || !CloseQueue.empty();
    if (!AnythingDueNow) {
      sim::SimTime Next = std::min(TimerNext, KernelNext);
      if (!TheKernel->waitUntil(Next)) {
        // Nothing local can ever become due; cross-loop work still can.
        if (Port && Port->waitForWork(*this))
          continue;
        break;
      }
    }

    runTimersPhase();
    if (StopRequested)
      break;
    runIoPhase();
    if (StopRequested)
      break;
    runCheckPhase();
    if (StopRequested)
      break;
    runClosePhase();
  }

  sweepReleasedObjects();
  if (!Hooks.empty())
    Hooks.fireLoopEnd(instr::LoopEndEvent{TickSeq, BudgetExhausted});
}

void Runtime::main(const Function &MainFn) {
  assert(TickSeq == 0 && "main() must be the first dispatch");
  ScheduledTask T;
  T.Fn = MainFn;
  dispatchTask(T, PhaseKind::Main);
  drainMicrotasks();
  runLoop();
}

//===----------------------------------------------------------------------===//
// Self-scheduling APIs
//===----------------------------------------------------------------------===//

ScheduleId Runtime::nextTick(SourceLocation Loc, const Function &Fn,
                             std::vector<Value> Args) {
  assert(Fn.isValid() && "nextTick requires a callback");
  ScheduleId S = newSchedule();
  if (!Hooks.empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = ApiKind::NextTick;
    E.Loc = Loc;
    E.Sched = S;
    E.Callbacks.push_back(Fn);
    E.TargetPhase = PhaseKind::NextTick;
    E.Once = true;
    Hooks.fireApiCall(E);
  }
  ScheduledTask T;
  T.Fn = Fn;
  T.Args = std::move(Args);
  T.Sched = S;
  T.Api = ApiKind::NextTick;
  NextTickQueue.push_back(std::move(T));
  return S;
}

TimerHandle Runtime::setTimeout(SourceLocation Loc, const Function &Fn,
                                double Ms, std::vector<Value> Args) {
  assert(Fn.isValid() && "setTimeout requires a callback");
  double Clamped = Ms;
  if (Config.ClampZeroTimeout && Clamped < 1.0)
    Clamped = 1.0;
  ScheduleId S = newSchedule();
  if (!Hooks.empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = ApiKind::SetTimeout;
    E.Loc = Loc;
    E.Sched = S;
    E.Callbacks.push_back(Fn);
    E.TargetPhase = PhaseKind::Timers;
    E.Once = true;
    E.TimeoutMs = Ms;
    Hooks.fireApiCall(E);
  }
  TimerEntry T;
  T.Id = ++LastTimerId;
  T.Seq = ++LastTimerSeq;
  T.Due = TheClock.now() + static_cast<sim::SimTime>(Clamped * 1000.0);
  T.IntervalUs = 0;
  T.TimeoutMs = Ms;
  T.Fn = Fn;
  T.Args = std::move(Args);
  T.Sched = S;
  T.Api = ApiKind::SetTimeout;
  T.Loc = std::move(Loc);
  Timers.add(std::move(T));
  return TimerHandle{LastTimerId};
}

TimerHandle Runtime::setInterval(SourceLocation Loc, const Function &Fn,
                                 double Ms, std::vector<Value> Args) {
  assert(Fn.isValid() && "setInterval requires a callback");
  double Clamped = Ms;
  if (Config.ClampZeroTimeout && Clamped < 1.0)
    Clamped = 1.0;
  ScheduleId S = newSchedule();
  if (!Hooks.empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = ApiKind::SetInterval;
    E.Loc = Loc;
    E.Sched = S;
    E.Callbacks.push_back(Fn);
    E.TargetPhase = PhaseKind::Timers;
    E.Once = false;
    E.TimeoutMs = Ms;
    Hooks.fireApiCall(E);
  }
  sim::SimTime IntervalUs = static_cast<sim::SimTime>(Clamped * 1000.0);
  TimerEntry T;
  T.Id = ++LastTimerId;
  T.Seq = ++LastTimerSeq;
  T.Due = TheClock.now() + IntervalUs;
  T.IntervalUs = IntervalUs;
  T.TimeoutMs = Ms;
  T.Fn = Fn;
  T.Args = std::move(Args);
  T.Sched = S;
  T.Api = ApiKind::SetInterval;
  T.Loc = std::move(Loc);
  Timers.add(std::move(T));
  return TimerHandle{LastTimerId};
}

bool Runtime::clearTimer(TimerHandle H) {
  if (!H.isValid())
    return false;
  if (Timers.cancel(H.Id))
    return true;
  // The timer may be the interval currently running: suppress its re-add.
  CancelledTimers.insert(H.Id);
  return false;
}

ImmediateHandle Runtime::setImmediate(SourceLocation Loc, const Function &Fn,
                                      std::vector<Value> Args) {
  assert(Fn.isValid() && "setImmediate requires a callback");
  ScheduleId S = newSchedule();
  if (!Hooks.empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = ApiKind::SetImmediate;
    E.Loc = Loc;
    E.Sched = S;
    E.Callbacks.push_back(Fn);
    E.TargetPhase = PhaseKind::Check;
    E.Once = true;
    Hooks.fireApiCall(E);
  }
  ScheduledTask T;
  T.Fn = Fn;
  T.Args = std::move(Args);
  T.Sched = S;
  T.Api = ApiKind::SetImmediate;
  T.ImmediateId = ++LastImmediateId;
  ImmediateQueue.push_back(std::move(T));
  return ImmediateHandle{LastImmediateId};
}

bool Runtime::clearImmediate(ImmediateHandle H) {
  if (!H.isValid())
    return false;
  for (ScheduledTask &T : ImmediateQueue) {
    if (T.ImmediateId == H.Id && !T.Cancelled) {
      T.Cancelled = true;
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Promises
//===----------------------------------------------------------------------===//

PromiseRef Runtime::promiseNew(SourceLocation Loc, bool Internal,
                               ObjectId Parent, ApiKind Relation,
                               std::string Name) {
  auto P = std::make_shared<PromiseData>();
  P->Id = nextObjectId();
  P->CreatedAt = Loc;
  P->Internal = Internal;
  AllPromises.push_back(TrackedPromise{P->Id, P});
  if (!Hooks.empty()) {
    instr::ObjectCreateEvent E;
    E.Obj = P->Id;
    E.IsPromise = true;
    E.Name = std::move(Name);
    E.Loc = std::move(Loc);
    E.Internal = Internal;
    E.Parent = Parent;
    E.Relation = Relation;
    Hooks.fireObjectCreate(E);
  }
  return P;
}

PromiseRef Runtime::promiseBare(SourceLocation Loc, std::string Name) {
  return promiseNew(std::move(Loc), /*Internal=*/false, /*Parent=*/0,
                    ApiKind::None, std::move(Name));
}

PromiseRef Runtime::promiseCreate(SourceLocation Loc,
                                  const Function &Executor) {
  assert(Executor.isValid() && "promise executor required");
  PromiseRef P = promiseNew(Loc, /*Internal=*/false);

  ScheduleId S = newSchedule();
  if (!Hooks.empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = ApiKind::PromiseCtor;
    E.Loc = Loc;
    E.Sched = S;
    E.Callbacks.push_back(Executor);
    E.TargetPhase = CurPhase; // Executors run instantly in the current tick.
    E.Once = true;
    E.BoundObj = P->Id;
    Hooks.fireApiCall(E);
  }

  // The resolve/reject functions handed to the executor report the
  // executor's own location as the action site (in the paper's Fig. 4 the
  // CT "resolve" appears at the executor's line).
  SourceLocation ActionLoc = Executor.loc();
  Function ResolveFn =
      makeBuiltin("resolve", [P, ActionLoc](Runtime &RT, const CallArgs &A) {
        RT.resolvePromise(ActionLoc, P, A.arg(0));
        return Completion::normal();
      });
  Function RejectFn =
      makeBuiltin("reject", [P, ActionLoc](Runtime &RT, const CallArgs &A) {
        RT.rejectPromise(ActionLoc, P, A.arg(0));
        return Completion::normal();
      });

  DispatchInfo D;
  D.Phase = CurPhase;
  D.TopLevel = false;
  D.Sched = S;
  D.Api = ApiKind::PromiseCtor;
  D.TickSeq = TickSeq;
  Completion C = invoke(
      Executor, CallArgs({ResolveFn.toValue(), RejectFn.toValue()}), D);
  if (C.isThrow())
    rejectPromise(Loc, P, C.takeValue());
  return P;
}

PromiseRef Runtime::promiseResolvedWith(SourceLocation Loc, Value V) {
  if (V.isPromise())
    return V.asPromise();
  PromiseRef P = promiseNew(Loc, /*Internal=*/false);
  resolvePromise(Loc, P, std::move(V));
  return P;
}

PromiseRef Runtime::promiseRejectedWith(SourceLocation Loc, Value V) {
  PromiseRef P = promiseNew(Loc, /*Internal=*/false);
  rejectPromise(Loc, P, std::move(V));
  return P;
}

PromiseRef Runtime::promiseReactionJob(SourceLocation Loc, ApiKind Via,
                                       const PromiseRef &P,
                                       const Function &OnF,
                                       const Function &OnR, bool WantDerived,
                                       bool Internal) {
  assert(P && "reaction on null promise");
  PromiseRef Derived;
  if (WantDerived)
    Derived = promiseNew(Loc, Internal, P->Id, Via);

  ScheduleId S = newSchedule();
  if (!Hooks.empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = Via;
    E.Loc = Loc;
    E.Sched = S;
    if (OnF.isValid())
      E.Callbacks.push_back(OnF);
    if (OnR.isValid() && !(Via == ApiKind::Await && OnR.sameAs(OnF)))
      E.Callbacks.push_back(OnR);
    E.TargetPhase = PhaseKind::PromiseMicro;
    E.Once = true;
    E.BoundObj = P->Id;
    E.DerivedObj = Derived ? Derived->Id : 0;
    E.HasRejectHandler = OnR.isValid();
    E.Internal = Internal;
    Hooks.fireApiCall(E);
  }

  PromiseReaction R;
  R.OnFulfill = OnF;
  R.OnReject = OnR;
  R.Derived = Derived;
  R.Sched = S;
  R.Via = Via;
  P->Handled = true;
  if (P->isSettled())
    enqueueReaction(P, std::move(R), P->SettleTrigger);
  else
    P->Reactions.push_back(std::move(R));
  return Derived;
}

PromiseRef Runtime::promiseThen(SourceLocation Loc, const PromiseRef &P,
                                const Function &OnFulfill,
                                const Function &OnReject) {
  return promiseReactionJob(std::move(Loc), ApiKind::PromiseThen, P,
                            OnFulfill, OnReject, /*WantDerived=*/true,
                            /*Internal=*/false);
}

PromiseRef Runtime::promiseCatch(SourceLocation Loc, const PromiseRef &P,
                                 const Function &OnReject) {
  return promiseReactionJob(std::move(Loc), ApiKind::PromiseCatch, P,
                            Function(), OnReject, /*WantDerived=*/true,
                            /*Internal=*/false);
}

PromiseRef Runtime::promiseFinally(SourceLocation Loc, const PromiseRef &P,
                                   const Function &OnFinally) {
  // The handler is carried in the OnFulfill slot; enqueueReaction
  // special-cases Via == PromiseFinally.
  return promiseReactionJob(std::move(Loc), ApiKind::PromiseFinally, P,
                            OnFinally, Function(), /*WantDerived=*/true,
                            /*Internal=*/false);
}

void Runtime::enqueueReaction(const PromiseRef &Source, PromiseReaction R,
                              TriggerId Trig) {
  assert(Source->isSettled() && "enqueueing a reaction on a pending promise");
  bool IsReject = Source->State == PromiseState::Rejected;
  Value Result = Source->Result;

  ScheduledTask T;
  T.Sched = R.Sched;
  T.Api = R.Via;
  T.Trigger.K = TriggerInfo::Kind::Promise;
  T.Trigger.Id = Trig;
  T.Trigger.Obj = Source->Id;
  T.Trigger.IsReject = IsReject;

  PromiseRef Derived = R.Derived;
  ObjectId SourceId = Source->Id;
  ScheduleId Sched = R.Sched;

  if (R.Via == ApiKind::PromiseFinally) {
    T.Fn = R.OnFulfill; // The finally handler; receives no arguments.
    T.OnComplete = [Derived, Result, IsReject](Runtime &RT, Completion C) {
      if (!Derived)
        return;
      if (C.isThrow())
        RT.rejectPromiseInternal(Derived, C.takeValue());
      else if (IsReject)
        RT.rejectPromiseInternal(Derived, Result);
      else
        RT.resolvePromiseInternal(Derived, Result);
    };
    PromiseQueue.push_back(std::move(T));
    return;
  }

  if (R.Via == ApiKind::Await) {
    // Await continuations receive (value, isRejected) and do their own
    // settling of the async function's result promise.
    T.Fn = IsReject ? R.OnReject : R.OnFulfill;
    T.Args = {Result, Value::boolean(IsReject)};
    T.OnComplete = [](Runtime &RT, Completion C) {
      if (C.isThrow())
        RT.reportUncaught(C.takeValue(), SourceLocation::internal());
    };
    PromiseQueue.push_back(std::move(T));
    return;
  }

  Function Handler = IsReject ? R.OnReject : R.OnFulfill;
  if (!Handler.isValid()) {
    // Pass-through reaction: an internal micro-task forwards the result.
    if (!PassthroughFn.isValid())
      PassthroughFn = makeBuiltin(
          "(passthrough)", [](Runtime &, const CallArgs &) {
            return Completion::normal();
          });
    T.Fn = PassthroughFn;
    T.Api = ApiKind::Internal;
    T.OnComplete = [Derived, Result, IsReject](Runtime &RT, Completion) {
      if (!Derived)
        return;
      if (IsReject)
        RT.rejectPromiseInternal(Derived, Result);
      else
        RT.resolvePromiseInternal(Derived, Result);
    };
    PromiseQueue.push_back(std::move(T));
    return;
  }

  bool Internal = R.Via == ApiKind::Internal;
  T.Fn = Handler;
  T.Args = {Result};
  T.OnComplete = [Derived, SourceId, Sched, Internal](Runtime &RT,
                                                      Completion C) {
    if (C.isThrow()) {
      if (Derived)
        RT.rejectPromiseInternal(Derived, C.takeValue());
      else
        RT.reportUncaught(C.takeValue(), SourceLocation::internal());
      return;
    }
    Value RV = C.takeValue();
    if (!Derived)
      return;
    if (!Internal && !RT.hooks().empty()) {
      instr::ReactionResultEvent E;
      E.Source = SourceId;
      E.Derived = Derived->Id;
      E.Sched = Sched;
      E.ReturnedUndefined = RV.isUndefined();
      E.Threw = false;
      RT.hooks().fireReactionResult(E);
      if (RV.isPromise()) {
        instr::PromiseLinkEvent L;
        L.Returned = RV.asPromise()->Id;
        L.Derived = Derived->Id;
        RT.hooks().firePromiseLink(L);
      }
    }
    RT.resolvePromiseInternal(Derived, RV);
  };
  PromiseQueue.push_back(std::move(T));
}

void Runtime::resolveImpl(SourceLocation Loc, const PromiseRef &P, Value V,
                          bool Reject, bool Internal) {
  assert(P && "settling a null promise");
  TriggerId Trig = newTrigger();
  bool Effect = P->isPending() && !P->AlreadyResolved;
  if (!Hooks.empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = Reject ? ApiKind::PromiseReject : ApiKind::PromiseResolve;
    E.Loc = Loc;
    E.TargetPhase = PhaseKind::PromiseMicro;
    E.BoundObj = P->Id;
    E.Trigger = Trig;
    E.TriggerHadEffect = Effect;
    E.Internal = Internal;
    Hooks.fireApiCall(E);
  }
  if (!Effect)
    return;
  if (!Reject && V.isPromise() && V.asPromise() != P) {
    P->AlreadyResolved = true;
    adoptPromise(P, V.asPromise());
    return;
  }
  P->AlreadyResolved = true;
  settle(P, Reject, std::move(V), std::move(Loc), Internal, Trig);
}

void Runtime::settle(const PromiseRef &P, bool Reject, Value V,
                     SourceLocation Loc, bool Internal, TriggerId Trig) {
  (void)Loc;
  (void)Internal;
  P->State = Reject ? PromiseState::Rejected : PromiseState::Fulfilled;
  P->Result = std::move(V);
  P->SettleTrigger = Trig;
  std::vector<PromiseReaction> Reactions = std::move(P->Reactions);
  P->Reactions.clear();
  for (PromiseReaction &R : Reactions)
    enqueueReaction(P, std::move(R), Trig);
}

void Runtime::adoptPromise(const PromiseRef &Outer, const PromiseRef &Inner) {
  // Outer adopts Inner's eventual state: attach internal forwarding
  // reactions. Inner counts as handled.
  PromiseRef OuterRef = Outer;
  Function OnF = makeBuiltin("(adopt)", [OuterRef](Runtime &RT,
                                                   const CallArgs &A) {
    RT.settleFromAdoption(OuterRef, /*Reject=*/false, A.arg(0));
    return Completion::normal();
  });
  Function OnR = makeBuiltin("(adopt)", [OuterRef](Runtime &RT,
                                                   const CallArgs &A) {
    RT.settleFromAdoption(OuterRef, /*Reject=*/true, A.arg(0));
    return Completion::normal();
  });
  promiseReactionJob(SourceLocation::internal(), ApiKind::Internal, Inner,
                     OnF, OnR, /*WantDerived=*/false, /*Internal=*/true);
}

void Runtime::settleFromAdoption(const PromiseRef &P, bool Reject, Value V) {
  if (P->isSettled())
    return;
  if (!Reject && V.isPromise() && V.asPromise() != P) {
    adoptPromise(P, V.asPromise());
    return;
  }
  TriggerId Trig = newTrigger();
  if (!Hooks.empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = Reject ? ApiKind::PromiseReject : ApiKind::PromiseResolve;
    E.Loc = SourceLocation::internal();
    E.TargetPhase = PhaseKind::PromiseMicro;
    E.BoundObj = P->Id;
    E.Trigger = Trig;
    E.TriggerHadEffect = true;
    E.Internal = true;
    Hooks.fireApiCall(E);
  }
  settle(P, Reject, std::move(V), SourceLocation::internal(),
         /*Internal=*/true, Trig);
}

void Runtime::resolvePromise(SourceLocation Loc, const PromiseRef &P,
                             Value V) {
  resolveImpl(std::move(Loc), P, std::move(V), /*Reject=*/false,
              /*Internal=*/false);
}

void Runtime::rejectPromise(SourceLocation Loc, const PromiseRef &P,
                            Value V) {
  resolveImpl(std::move(Loc), P, std::move(V), /*Reject=*/true,
              /*Internal=*/false);
}

void Runtime::resolvePromiseInternal(const PromiseRef &P, Value V) {
  resolveImpl(SourceLocation::internal(), P, std::move(V), /*Reject=*/false,
              /*Internal=*/true);
}

void Runtime::rejectPromiseInternal(const PromiseRef &P, Value V) {
  resolveImpl(SourceLocation::internal(), P, std::move(V), /*Reject=*/true,
              /*Internal=*/true);
}

ScheduleId
Runtime::promiseAwait(SourceLocation Loc, const PromiseRef &P,
                      std::string FnName,
                      std::function<void(Runtime &, Value, bool)> Resume) {
  assert(P && "awaiting a null promise");
  Function Cont = makeFunction(
      FnName + " (resumed)", Loc,
      [Resume = std::move(Resume)](Runtime &RT, const CallArgs &A) {
        Resume(RT, A.arg(0), A.arg(1).toBoolean());
        return Completion::normal();
      });
  promiseReactionJob(std::move(Loc), ApiKind::Await, P, Cont, Cont,
                     /*WantDerived=*/false, /*Internal=*/false);
  return LastScheduleId;
}

//===----------------------------------------------------------------------===//
// Promise combinators
//===----------------------------------------------------------------------===//

namespace {
/// Shared state for Promise.all / race / allSettled / any.
struct CombinatorState {
  PromiseRef Result;
  std::vector<Value> Values;
  size_t Remaining = 0;
  bool Done = false;
  size_t RejectionCount = 0;
};
} // namespace

PromiseRef Runtime::combinator(SourceLocation Loc, ApiKind Api,
                               std::vector<PromiseRef> Ps) {
  PromiseRef Result =
      promiseNew(Loc, /*Internal=*/false, /*Parent=*/0, Api,
                 apiKindName(Api));

  ScheduleId S = newSchedule();
  if (!Hooks.empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = Api;
    E.Loc = Loc;
    E.Sched = S;
    E.TargetPhase = PhaseKind::PromiseMicro;
    E.Once = true;
    E.BoundObj = Result->Id;
    for (const PromiseRef &P : Ps)
      E.InputObjs.push_back(P->Id);
    Hooks.fireApiCall(E);
  }

  auto State = std::make_shared<CombinatorState>();
  State->Result = Result;
  State->Remaining = Ps.size();
  State->Values.resize(Ps.size());

  if (Ps.empty()) {
    switch (Api) {
    case ApiKind::PromiseAll:
    case ApiKind::PromiseAllSettled:
      resolvePromiseInternal(Result, ArrayData::make());
      break;
    case ApiKind::PromiseAny:
      rejectPromiseInternal(
          Result, Value::str("AggregateError: all promises were rejected"));
      break;
    case ApiKind::PromiseRace:
      break; // Forever pending, per spec.
    default:
      assert(false && "not a combinator");
    }
    return Result;
  }

  for (size_t I = 0, N = Ps.size(); I != N; ++I) {
    const PromiseRef &P = Ps[I];
    auto OnSettled = [State, Api, I, N](Runtime &RT, Value V, bool Rejected) {
      if (State->Done)
        return;
      switch (Api) {
      case ApiKind::PromiseAll:
        if (Rejected) {
          State->Done = true;
          RT.rejectPromiseInternal(State->Result, std::move(V));
          return;
        }
        State->Values[I] = std::move(V);
        if (--State->Remaining == 0) {
          State->Done = true;
          RT.resolvePromiseInternal(State->Result,
                                    ArrayData::make(State->Values));
        }
        return;
      case ApiKind::PromiseRace:
        State->Done = true;
        if (Rejected)
          RT.rejectPromiseInternal(State->Result, std::move(V));
        else
          RT.resolvePromiseInternal(State->Result, std::move(V));
        return;
      case ApiKind::PromiseAllSettled: {
        Value Entry = Object::make();
        Entry.asObject()->set("status", Value::str(Rejected ? "rejected"
                                                            : "fulfilled"));
        Entry.asObject()->set(Rejected ? "reason" : "value", std::move(V));
        State->Values[I] = std::move(Entry);
        if (--State->Remaining == 0) {
          State->Done = true;
          RT.resolvePromiseInternal(State->Result,
                                    ArrayData::make(State->Values));
        }
        return;
      }
      case ApiKind::PromiseAny:
        if (!Rejected) {
          State->Done = true;
          RT.resolvePromiseInternal(State->Result, std::move(V));
          return;
        }
        if (++State->RejectionCount == N) {
          State->Done = true;
          RT.rejectPromiseInternal(
              State->Result,
              Value::str("AggregateError: all promises were rejected"));
        }
        return;
      default:
        assert(false && "not a combinator");
      }
    };

    Function OnF = makeBuiltin(
        "(combine)", [OnSettled](Runtime &RT, const CallArgs &A) {
          OnSettled(RT, A.arg(0), /*Rejected=*/false);
          return Completion::normal();
        });
    Function OnR = makeBuiltin(
        "(combine)", [OnSettled](Runtime &RT, const CallArgs &A) {
          OnSettled(RT, A.arg(0), /*Rejected=*/true);
          return Completion::normal();
        });
    promiseReactionJob(SourceLocation::internal(), ApiKind::Internal, P, OnF,
                       OnR, /*WantDerived=*/false, /*Internal=*/true);
  }
  return Result;
}

PromiseRef Runtime::promiseAll(SourceLocation Loc,
                               std::vector<PromiseRef> Ps) {
  return combinator(std::move(Loc), ApiKind::PromiseAll, std::move(Ps));
}

PromiseRef Runtime::promiseRace(SourceLocation Loc,
                                std::vector<PromiseRef> Ps) {
  return combinator(std::move(Loc), ApiKind::PromiseRace, std::move(Ps));
}

PromiseRef Runtime::promiseAllSettled(SourceLocation Loc,
                                      std::vector<PromiseRef> Ps) {
  return combinator(std::move(Loc), ApiKind::PromiseAllSettled,
                    std::move(Ps));
}

PromiseRef Runtime::promiseAny(SourceLocation Loc,
                               std::vector<PromiseRef> Ps) {
  return combinator(std::move(Loc), ApiKind::PromiseAny, std::move(Ps));
}

std::vector<PromiseRef> Runtime::livePromises() const {
  std::vector<PromiseRef> Out;
  for (const auto &W : AllPromises)
    if (PromiseRef P = W.Ref.lock())
      Out.push_back(std::move(P));
  return Out;
}

std::vector<PromiseRef> Runtime::unhandledRejections() const {
  std::vector<PromiseRef> Out;
  for (const auto &W : AllPromises) {
    PromiseRef P = W.Ref.lock();
    if (P && P->State == PromiseState::Rejected && !P->Handled)
      Out.push_back(std::move(P));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Emitters
//===----------------------------------------------------------------------===//

EmitterRef Runtime::emitterCreate(SourceLocation Loc, std::string Name,
                                  bool Internal) {
  auto E = std::make_shared<EmitterData>();
  E->Id = nextObjectId();
  E->Name = Name;
  E->Internal = Internal;
  E->CreatedAt = Loc;
  AllEmitters.push_back(TrackedEmitter{E->Id, E});
  if (!Hooks.empty()) {
    instr::ObjectCreateEvent Ev;
    Ev.Obj = E->Id;
    Ev.IsPromise = false;
    Ev.Name = std::move(Name);
    Ev.Loc = std::move(Loc);
    Ev.Internal = Internal;
    Hooks.fireObjectCreate(Ev);
  }
  return E;
}

ScheduleId Runtime::addListener(SourceLocation Loc, ApiKind Api,
                                const EmitterRef &E, const std::string &Event,
                                const Function &Fn, bool Once, bool Prepend) {
  assert(E && "listener on null emitter");
  assert(Fn.isValid() && "listener function required");
  ScheduleId S = newSchedule();
  if (!Hooks.empty()) {
    instr::ApiCallEvent &Ev = instr::scratchApiCall();
    Ev.Api = Api;
    Ev.Loc = Loc;
    Ev.Sched = S;
    Ev.Callbacks.push_back(Fn);
    Ev.TargetPhase = CurPhase; // Listeners run wherever emit() fires.
    Ev.Once = Once;
    Ev.BoundObj = E->Id;
    Ev.EventName = Event;
    Ev.Internal = Loc.isInternal();
    Hooks.fireApiCall(Ev);
  }
  Listener L;
  L.Fn = Fn;
  L.Once = Once;
  L.Sched = S;
  L.Via = Api;
  auto &List = E->Events[Event];
  if (Prepend)
    List.insert(List.begin(), std::move(L));
  else
    List.push_back(std::move(L));
  return S;
}

ScheduleId Runtime::emitterOn(SourceLocation Loc, const EmitterRef &E,
                              const std::string &Event, const Function &Fn) {
  return addListener(std::move(Loc), ApiKind::EmitterOn, E, Event, Fn,
                     /*Once=*/false, /*Prepend=*/false);
}

ScheduleId Runtime::emitterOnce(SourceLocation Loc, const EmitterRef &E,
                                const std::string &Event,
                                const Function &Fn) {
  return addListener(std::move(Loc), ApiKind::EmitterOnce, E, Event, Fn,
                     /*Once=*/true, /*Prepend=*/false);
}

ScheduleId Runtime::emitterPrepend(SourceLocation Loc, const EmitterRef &E,
                                   const std::string &Event,
                                   const Function &Fn) {
  return addListener(std::move(Loc), ApiKind::EmitterPrepend, E, Event, Fn,
                     /*Once=*/false, /*Prepend=*/true);
}

bool Runtime::emitterRemoveListener(SourceLocation Loc, const EmitterRef &E,
                                    const std::string &Event,
                                    const Function &Fn) {
  assert(E && "removeListener on null emitter");
  bool Removed = false;
  auto It = E->Events.find(Event);
  if (It != E->Events.end()) {
    auto &List = It->second;
    for (auto LI = List.begin(); LI != List.end(); ++LI) {
      if (LI->Fn.sameAs(Fn)) {
        List.erase(LI);
        Removed = true;
        break;
      }
    }
  }
  if (!Hooks.empty()) {
    instr::ApiCallEvent &Ev = instr::scratchApiCall();
    Ev.Api = ApiKind::EmitterRemoveListener;
    Ev.Loc = std::move(Loc);
    Ev.Callbacks.push_back(Fn);
    Ev.BoundObj = E->Id;
    Ev.EventName = Event;
    Ev.TriggerHadEffect = Removed;
    Hooks.fireApiCall(Ev);
  }
  return Removed;
}

void Runtime::emitterRemoveAll(SourceLocation Loc, const EmitterRef &E,
                               const std::string &Event) {
  assert(E && "removeAllListeners on null emitter");
  bool Removed = E->hasListeners(Event);
  E->Events.erase(Event);
  if (!Hooks.empty()) {
    instr::ApiCallEvent &Ev = instr::scratchApiCall();
    Ev.Api = ApiKind::EmitterRemoveAll;
    Ev.Loc = std::move(Loc);
    Ev.BoundObj = E->Id;
    Ev.EventName = Event;
    Ev.TriggerHadEffect = Removed;
    Hooks.fireApiCall(Ev);
  }
}

bool Runtime::emitterEmit(SourceLocation Loc, const EmitterRef &E,
                          const std::string &Event,
                          std::vector<Value> Args) {
  assert(E && "emit on null emitter");
  TriggerId Trig = newTrigger();

  // Snapshot the listener list: mutations during emission (add/remove
  // within a listener) affect only later emits, per Node semantics.
  std::vector<Listener> Snapshot;
  auto It = E->Events.find(Event);
  if (It != E->Events.end())
    Snapshot = It->second;
  bool HadListeners = !Snapshot.empty();

  if (!Hooks.empty()) {
    instr::ApiCallEvent &Ev = instr::scratchApiCall();
    Ev.Api = ApiKind::EmitterEmit;
    Ev.Loc = Loc;
    Ev.TargetPhase = CurPhase;
    Ev.BoundObj = E->Id;
    Ev.EventName = Event;
    Ev.Trigger = Trig;
    Ev.TriggerHadEffect = HadListeners;
    Ev.Internal = Loc.isInternal();
    Hooks.fireApiCall(Ev);
  }

  // Remove once-listeners before invoking them (Node semantics).
  if (It != E->Events.end()) {
    auto &Live = It->second;
    Live.erase(std::remove_if(Live.begin(), Live.end(),
                              [](const Listener &L) { return L.Once; }),
               Live.end());
  }

  for (const Listener &L : Snapshot) {
    DispatchInfo D;
    D.Phase = CurPhase;
    D.TopLevel = false;
    D.Sched = L.Sched;
    D.Api = L.Via;
    D.Trigger.K = TriggerInfo::Kind::Emitter;
    D.Trigger.Id = Trig;
    D.Trigger.Obj = E->Id;
    D.Trigger.Event = Event;
    D.TickSeq = TickSeq;
    Completion C = invoke(L.Fn, CallArgs(Args), D);
    if (C.isThrow())
      reportUncaught(C.takeValue(), L.Fn.loc());
  }

  if (!HadListeners && Event == "error") {
    // Node throws on unhandled 'error' events.
    Value Err = Args.empty() ? Value::str("Unhandled 'error' event")
                             : Args.front();
    reportUncaught(std::move(Err), std::move(Loc));
  }
  return HadListeners;
}

std::vector<EmitterRef> Runtime::liveEmitters() const {
  std::vector<EmitterRef> Out;
  for (const auto &W : AllEmitters)
    if (EmitterRef E = W.Ref.lock())
      Out.push_back(std::move(E));
  return Out;
}

//===----------------------------------------------------------------------===//
// External (I/O) scheduling support
//===----------------------------------------------------------------------===//

ScheduleId Runtime::registerExternal(SourceLocation Loc, ApiKind Api,
                                     const Function &Fn, bool Once,
                                     ObjectId BoundObj, std::string EventName,
                                     bool Internal) {
  assert(Fn.isValid() && "external registration requires a callback");
  ScheduleId S = newSchedule();
  if (!Hooks.empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = Api;
    E.Loc = std::move(Loc);
    E.Sched = S;
    E.Callbacks.push_back(Fn);
    E.TargetPhase = PhaseKind::Io;
    E.Once = Once;
    E.BoundObj = BoundObj;
    E.EventName = std::move(EventName);
    E.Internal = Internal;
    Hooks.fireApiCall(E);
  }
  return S;
}

void Runtime::dispatchExternal(const Function &Fn, std::vector<Value> Args,
                               ScheduleId Sched, ApiKind Api) {
  ScheduledTask T;
  T.Fn = Fn;
  T.Args = std::move(Args);
  T.Sched = Sched;
  T.Api = Api;
  dispatchTask(T, PhaseKind::Io);
}

TriggerId Runtime::emitExternalTrigger(SourceLocation Loc, ApiKind Api,
                                       ObjectId BoundObj,
                                       std::string EventName, bool Internal) {
  TriggerId T = newTrigger();
  if (!Hooks.empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = Api;
    E.Loc = std::move(Loc);
    E.Trigger = T;
    E.BoundObj = BoundObj;
    E.EventName = std::move(EventName);
    E.TriggerHadEffect = true;
    E.Internal = Internal;
    Hooks.fireApiCall(E);
  }
  return T;
}

void Runtime::dispatchInternal(const std::string &Name,
                               std::function<void(Runtime &)> Body) {
  Function Fn = makeBuiltin(Name, [Body = std::move(Body)](
                                      Runtime &RT, const CallArgs &) {
    Body(RT);
    return Completion::normal();
  });
  ScheduledTask T;
  T.Fn = Fn;
  T.Api = ApiKind::Internal;
  dispatchTask(T, PhaseKind::Io);
}

ScheduleId Runtime::scheduleCloseCallback(SourceLocation Loc,
                                          const Function &Fn,
                                          std::vector<Value> Args,
                                          bool Internal) {
  assert(Fn.isValid() && "close callback required");
  ScheduleId S = newSchedule();
  if (!Hooks.empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = ApiKind::Internal;
    E.Loc = std::move(Loc);
    E.Sched = S;
    E.Callbacks.push_back(Fn);
    E.TargetPhase = PhaseKind::Close;
    E.Once = true;
    E.Internal = Internal;
    Hooks.fireApiCall(E);
  }
  ScheduledTask T;
  T.Fn = Fn;
  T.Args = std::move(Args);
  T.Sched = S;
  T.Api = ApiKind::Internal;
  CloseQueue.push_back(std::move(T));
  return S;
}

ScheduleId Runtime::emitterOnVia(SourceLocation Loc, ApiKind Api,
                                 const EmitterRef &E,
                                 const std::string &Event, const Function &Fn,
                                 bool Once) {
  return addListener(std::move(Loc), Api, E, Event, Fn, Once,
                     /*Prepend=*/false);
}

Value Runtime::getProperty(SourceLocation Loc, const Value &ObjV,
                           const std::string &Key) {
  assert(ObjV.isObject() && "getProperty requires an object");
  if (!Hooks.empty()) {
    instr::PropertyAccessEvent E;
    E.Obj = reinterpret_cast<uintptr_t>(ObjV.asObject().get());
    E.Key = Key;
    E.IsWrite = false;
    E.Loc = std::move(Loc);
    Hooks.firePropertyAccess(E);
  }
  return ObjV.asObject()->get(Key);
}

void Runtime::setProperty(SourceLocation Loc, const Value &ObjV,
                          const std::string &Key, Value V) {
  assert(ObjV.isObject() && "setProperty requires an object");
  if (!Hooks.empty()) {
    instr::PropertyAccessEvent E;
    E.Obj = reinterpret_cast<uintptr_t>(ObjV.asObject().get());
    E.Key = Key;
    E.IsWrite = true;
    E.Loc = std::move(Loc);
    Hooks.firePropertyAccess(E);
  }
  ObjV.asObject()->set(Key, std::move(V));
}

ScheduleId Runtime::queueMicrotask(SourceLocation Loc, const Function &Fn,
                                   std::vector<Value> Args) {
  assert(Fn.isValid() && "queueMicrotask requires a callback");
  ScheduleId S = newSchedule();
  if (!Hooks.empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = ApiKind::QueueMicrotask;
    E.Loc = std::move(Loc);
    E.Sched = S;
    E.Callbacks.push_back(Fn);
    E.TargetPhase = PhaseKind::PromiseMicro;
    E.Once = true;
    Hooks.fireApiCall(E);
  }
  ScheduledTask T;
  T.Fn = Fn;
  T.Args = std::move(Args);
  T.Sched = S;
  T.Api = ApiKind::QueueMicrotask;
  PromiseQueue.push_back(std::move(T));
  return S;
}

const EmitterRef &Runtime::process() {
  if (!ProcessEmitter)
    ProcessEmitter = emitterCreate(SourceLocation::internal(), "process",
                                   /*Internal=*/true);
  return ProcessEmitter;
}

bool Runtime::tryBeforeExit() {
  if (BeforeExitEmitted || !ProcessEmitter ||
      !ProcessEmitter->hasListeners("beforeExit"))
    return false;
  EmitterRef Process = ProcessEmitter;
  dispatchInternal("(before exit)", [Process](Runtime &RT) {
    RT.emitterEmit(SourceLocation::internal(), Process, "beforeExit");
  });
  // Set after the dispatch (which clears the flag): one emission per
  // drain unless listeners scheduled new work.
  BeforeExitEmitted = true;
  return true;
}
