//===- Ids.h - Identifier types used across the runtime ---------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain integer identifier aliases shared by the runtime, the
/// instrumentation events, and the Async Graph builder.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_IDS_H
#define ASYNCG_JSRT_IDS_H

#include <cstdint>

namespace asyncg {
namespace jsrt {

/// Identity of a JavaScript-level function (callback). Two Function values
/// with the same FunctionId are "the same function object" for listener
/// removal and recursion detection.
using FunctionId = uint64_t;

/// Identity of a promise or emitter object (OB node identity in the AG).
using ObjectId = uint64_t;

/// Identity of one callback registration (a CR node in the AG). Zero means
/// "no registration" (e.g. a plain nested call).
using ScheduleId = uint64_t;

/// Identity of one callback-trigger action (a CT node in the AG): a promise
/// resolve/reject or an emitter event emission. Zero means none.
using TriggerId = uint64_t;

/// \name Shard-namespaced ids (cluster mode)
///
/// Cluster mode runs N event loops on N threads, each minting ids from its
/// own generators. To keep per-shard Async Graphs buildable lock-free and
/// mergeable without collisions, every 64-bit id carries its loop's shard
/// number in the top ShardIdBits bits; the low bits stay a small sequential
/// local counter. Shard 0 is the identity encoding — a single-loop runtime
/// produces exactly the ids it produced before cluster mode existed, which
/// is what keeps 1-loop cluster runs byte-identical to the classic path.
/// @{

/// Number of id bits reserved for the shard number.
constexpr unsigned ShardIdBits = 8;
/// Bit position of the shard field.
constexpr unsigned ShardIdShift = 64 - ShardIdBits;
/// Highest representable shard number (255 loops).
constexpr uint32_t MaxShardId = (1u << ShardIdBits) - 1;

/// First id value of \p Shard's namespace (0 for shard 0).
constexpr uint64_t shardIdBase(uint32_t Shard) {
  return static_cast<uint64_t>(Shard) << ShardIdShift;
}

/// The shard number an id was minted by.
constexpr uint32_t idShard(uint64_t Id) {
  return static_cast<uint32_t>(Id >> ShardIdShift);
}

/// The shard-local sequential part of an id (small, dense per shard).
constexpr uint64_t idLocal(uint64_t Id) {
  return Id & (shardIdBase(1) - 1);
}
/// @}

/// Handle returned by setTimeout/setInterval for clearTimeout/clearInterval.
struct TimerHandle {
  uint64_t Id = 0;
  bool isValid() const { return Id != 0; }
};

/// Handle returned by setImmediate for clearImmediate.
struct ImmediateHandle {
  uint64_t Id = 0;
  bool isValid() const { return Id != 0; }
};

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_IDS_H
