//===- Ids.h - Identifier types used across the runtime ---------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain integer identifier aliases shared by the runtime, the
/// instrumentation events, and the Async Graph builder.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_IDS_H
#define ASYNCG_JSRT_IDS_H

#include <cstdint>

namespace asyncg {
namespace jsrt {

/// Identity of a JavaScript-level function (callback). Two Function values
/// with the same FunctionId are "the same function object" for listener
/// removal and recursion detection.
using FunctionId = uint64_t;

/// Identity of a promise or emitter object (OB node identity in the AG).
using ObjectId = uint64_t;

/// Identity of one callback registration (a CR node in the AG). Zero means
/// "no registration" (e.g. a plain nested call).
using ScheduleId = uint64_t;

/// Identity of one callback-trigger action (a CT node in the AG): a promise
/// resolve/reject or an emitter event emission. Zero means none.
using TriggerId = uint64_t;

/// Handle returned by setTimeout/setInterval for clearTimeout/clearInterval.
struct TimerHandle {
  uint64_t Id = 0;
  bool isValid() const { return Id != 0; }
};

/// Handle returned by setImmediate for clearImmediate.
struct ImmediateHandle {
  uint64_t Id = 0;
  bool isValid() const { return Id != 0; }
};

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_IDS_H
