//===- Dispatch.h - Callback dispatch metadata ------------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metadata attached to every function invocation, describing how the
/// event loop dispatched it: the phase, the registration that scheduled it,
/// and the trigger action (promise settle / event emission) that caused it.
/// This is what NodeProf's internal-library instrumentation lets AsyncG
/// observe; the AG builder's context validator consumes it.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_DISPATCH_H
#define ASYNCG_JSRT_DISPATCH_H

#include "jsrt/ApiKind.h"
#include "jsrt/Ids.h"
#include "jsrt/PhaseKind.h"
#include "support/SymbolTable.h"

namespace asyncg {
namespace jsrt {

/// Describes the trigger action (CT node) that caused a callback execution,
/// if any: a promise resolve/reject or an emitter event emission.
struct TriggerInfo {
  enum class Kind {
    None,
    Promise, ///< resolve/reject action on Obj.
    Emitter, ///< event Emission of Event on Obj.
  };

  Kind K = Kind::None;
  /// Unique id of the trigger action (shared by all CEs it causes).
  TriggerId Id = 0;
  /// The promise/emitter the action applies to.
  ObjectId Obj = 0;
  /// Event name for emitter triggers (interned).
  Symbol Event;
  /// True for reject actions.
  bool IsReject = false;

  bool isNone() const { return K == Kind::None; }
};

/// Dispatch metadata passed to functionEnter hooks.
struct DispatchInfo {
  /// Phase the invocation runs in.
  PhaseKind Phase = PhaseKind::Main;
  /// True when the event loop dispatched this invocation directly (the
  /// shadow stack is empty: a new tick starts, per Algorithm 1).
  bool TopLevel = false;
  /// The registration (CR) this execution fulfils; 0 for plain calls.
  ScheduleId Sched = 0;
  /// The API that registered the callback; None for plain calls.
  ApiKind Api = ApiKind::None;
  /// The trigger action that caused the execution, if any.
  TriggerInfo Trigger;
  /// The runtime's tick counter at dispatch (diagnostics only; the AG
  /// builder derives its own tick indices from the shadow stack).
  uint64_t TickSeq = 0;
};

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_DISPATCH_H
