//===- Completion.h - Normal/throw completion records -----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JavaScript exceptions are modelled as completion records instead of C++
/// exceptions (the coding guides forbid exceptions in library code, and an
/// interpreter-style explicit completion is more faithful anyway). Every
/// callback body returns a Completion; a Throw completion propagating out of
/// a top-level dispatch becomes an uncaught error, and one propagating out
/// of a promise reaction rejects the derived promise.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_COMPLETION_H
#define ASYNCG_JSRT_COMPLETION_H

#include "jsrt/Value.h"

namespace asyncg {
namespace jsrt {

/// The result of evaluating a callback body: either a normal value or a
/// thrown value.
class Completion {
public:
  /// Default: normal completion with undefined.
  Completion() = default;

  /// Implicit conversion from a value: a normal completion. Lets async
  /// functions write `co_return Value::number(1)`.
  Completion(Value V) : V(std::move(V)) {}

  static Completion normal(Value V = Value::undefined()) {
    Completion C;
    C.V = std::move(V);
    return C;
  }

  static Completion thrown(Value V) {
    Completion C;
    C.V = std::move(V);
    C.IsThrow = true;
    return C;
  }

  /// Convenience: throws a string error value.
  static Completion error(std::string Message) {
    return thrown(Value::str(std::move(Message)));
  }

  bool isThrow() const { return IsThrow; }
  bool isNormal() const { return !IsThrow; }

  const Value &value() const { return V; }
  Value takeValue() { return std::move(V); }

private:
  Value V;
  bool IsThrow = false;
};

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_COMPLETION_H
