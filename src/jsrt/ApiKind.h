//===- ApiKind.h - Asynchronous API identifiers -----------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifies every asynchronous API the runtime exposes. The AG builder
/// selects a registration template per ApiKind (Algorithm 2's
/// getAsyncTemplate), and the scheduling-bug detectors reason about which
/// APIs are "similar" (nextTick vs setTimeout(0) vs setImmediate).
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_APIKIND_H
#define ASYNCG_JSRT_APIKIND_H

#include "jsrt/PhaseKind.h"

namespace asyncg {
namespace jsrt {

/// Asynchronous API kinds, covering all sources of asynchronous execution
/// in §II-A: self-scheduling, external scheduling, emitters, and promises.
enum class ApiKind {
  None,

  // Self-scheduling task dispatch.
  NextTick,
  QueueMicrotask, ///< queueMicrotask(fn): the promise micro-task queue.
  SetTimeout,
  SetInterval,
  SetImmediate,

  // Promise APIs that register callbacks.
  PromiseCtor,   ///< new Promise(executor): executor runs instantly.
  PromiseThen,   ///< p.then(onFulfill[, onReject])
  PromiseCatch,  ///< p.catch(onReject)
  PromiseFinally,///< p.finally(onFinally)
  PromiseAll,    ///< Promise.all(list)
  PromiseRace,   ///< Promise.race(list)
  PromiseAllSettled, ///< Promise.allSettled(list)
  PromiseAny,    ///< Promise.any(list)
  Await,         ///< `await p` inside an async function.

  // Promise trigger actions (CT nodes).
  PromiseResolve, ///< resolve(value) — incl. internal adoption settles.
  PromiseReject,  ///< reject(error)

  // Emitter APIs.
  EmitterOn,
  EmitterOnce,
  EmitterPrepend,
  EmitterRemoveListener,
  EmitterRemoveAll,
  EmitterEmit, ///< Trigger action (CT node); listeners run synchronously.

  // External scheduling (I/O) APIs in the node layer.
  FsReadFile,
  FsWriteFile,
  NetCreateServer,
  NetListen,
  NetConnect,
  HttpCreateServer,
  HttpRequest,
  DbQuery, ///< The mock-mongo callback interface used by AcmeAir.

  // Internal dispatch (e.g. the io event dispatcher, adoption reactions).
  Internal,

  // Cluster mode (appended after Internal so the numeric values of every
  // earlier kind — stored raw in v1/v2 trace records — stay stable).
  ClusterSend, ///< Cross-loop send: a CT whose execution lands on another
               ///< loop (the handoff id becomes the receiver tick's Sched).
  ClusterRecv, ///< Cross-loop delivery tick on the receiving loop.
};

/// Human-readable API name as shown in graph node labels.
inline const char *apiKindName(ApiKind K) {
  switch (K) {
  case ApiKind::None:
    return "none";
  case ApiKind::NextTick:
    return "nextTick";
  case ApiKind::QueueMicrotask:
    return "queueMicrotask";
  case ApiKind::SetTimeout:
    return "setTimeout";
  case ApiKind::SetInterval:
    return "setInterval";
  case ApiKind::SetImmediate:
    return "setImmediate";
  case ApiKind::PromiseCtor:
    return "Promise";
  case ApiKind::PromiseThen:
    return "then";
  case ApiKind::PromiseCatch:
    return "catch";
  case ApiKind::PromiseFinally:
    return "finally";
  case ApiKind::PromiseAll:
    return "Promise.all";
  case ApiKind::PromiseRace:
    return "Promise.race";
  case ApiKind::PromiseAllSettled:
    return "Promise.allSettled";
  case ApiKind::PromiseAny:
    return "Promise.any";
  case ApiKind::Await:
    return "await";
  case ApiKind::PromiseResolve:
    return "resolve";
  case ApiKind::PromiseReject:
    return "reject";
  case ApiKind::EmitterOn:
    return "on";
  case ApiKind::EmitterOnce:
    return "once";
  case ApiKind::EmitterPrepend:
    return "prependListener";
  case ApiKind::EmitterRemoveListener:
    return "removeListener";
  case ApiKind::EmitterRemoveAll:
    return "removeAllListeners";
  case ApiKind::EmitterEmit:
    return "emit";
  case ApiKind::FsReadFile:
    return "fs.readFile";
  case ApiKind::FsWriteFile:
    return "fs.writeFile";
  case ApiKind::NetCreateServer:
    return "net.createServer";
  case ApiKind::NetListen:
    return "listen";
  case ApiKind::NetConnect:
    return "net.connect";
  case ApiKind::HttpCreateServer:
    return "http.createServer";
  case ApiKind::HttpRequest:
    return "http.request";
  case ApiKind::DbQuery:
    return "db.query";
  case ApiKind::Internal:
    return "*";
  case ApiKind::ClusterSend:
    return "cluster.send";
  case ApiKind::ClusterRecv:
    return "cluster.recv";
  }
  return "unknown";
}

/// True for APIs that register callbacks on an emitter object.
inline bool isEmitterRegistrationApi(ApiKind K) {
  return K == ApiKind::EmitterOn || K == ApiKind::EmitterOnce ||
         K == ApiKind::EmitterPrepend;
}

/// True for APIs whose callbacks run as micro-tasks.
inline bool isMicrotaskApi(ApiKind K) {
  switch (K) {
  case ApiKind::NextTick:
  case ApiKind::QueueMicrotask:
  case ApiKind::PromiseThen:
  case ApiKind::PromiseCatch:
  case ApiKind::PromiseFinally:
  case ApiKind::Await:
    return true;
  default:
    return false;
  }
}

/// True for the trigger-action APIs that produce CT nodes in the graph.
inline bool isTriggerApi(ApiKind K) {
  return K == ApiKind::PromiseResolve || K == ApiKind::PromiseReject ||
         K == ApiKind::EmitterEmit;
}

/// True for promise-related APIs (used by the AsyncG "nopromise" setting of
/// Fig. 6(a), which excludes promise tracking).
inline bool isPromiseApi(ApiKind K) {
  switch (K) {
  case ApiKind::PromiseCtor:
  case ApiKind::PromiseThen:
  case ApiKind::PromiseCatch:
  case ApiKind::PromiseFinally:
  case ApiKind::PromiseAll:
  case ApiKind::PromiseRace:
  case ApiKind::PromiseAllSettled:
  case ApiKind::PromiseAny:
  case ApiKind::Await:
  case ApiKind::PromiseResolve:
  case ApiKind::PromiseReject:
    return true;
  default:
    return false;
  }
}

/// The "similar APIs" family of §VI-A.1b: task-deferral APIs with subtly
/// different scheduling priorities whose mixture in one tick is suspicious.
inline bool isDeferralApi(ApiKind K) {
  return K == ApiKind::NextTick || K == ApiKind::SetTimeout ||
         K == ApiKind::SetImmediate;
}

/// The event-loop phase a callback registered via \p K will execute in.
inline PhaseKind targetPhaseOf(ApiKind K) {
  switch (K) {
  case ApiKind::NextTick:
    return PhaseKind::NextTick;
  case ApiKind::QueueMicrotask:
    return PhaseKind::PromiseMicro;
  case ApiKind::SetTimeout:
  case ApiKind::SetInterval:
    return PhaseKind::Timers;
  case ApiKind::SetImmediate:
    return PhaseKind::Check;
  case ApiKind::PromiseThen:
  case ApiKind::PromiseCatch:
  case ApiKind::PromiseFinally:
  case ApiKind::Await:
  case ApiKind::PromiseAll:
  case ApiKind::PromiseRace:
  case ApiKind::PromiseAllSettled:
  case ApiKind::PromiseAny:
    return PhaseKind::PromiseMicro;
  case ApiKind::FsReadFile:
  case ApiKind::FsWriteFile:
  case ApiKind::NetCreateServer:
  case ApiKind::NetListen:
  case ApiKind::NetConnect:
  case ApiKind::HttpCreateServer:
  case ApiKind::HttpRequest:
  case ApiKind::DbQuery:
  case ApiKind::ClusterSend:
  case ApiKind::ClusterRecv:
    return PhaseKind::Io;
  default:
    // Emitter listeners and instant callbacks execute in whatever phase the
    // trigger fires in; "Main" acts as the neutral answer here.
    return PhaseKind::Main;
  }
}

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_APIKIND_H
