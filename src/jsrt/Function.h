//===- Function.h - First-class callbacks with identity ---------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JavaScript-level functions: a C++ callable plus a stable identity
/// (FunctionId), a name, and the source location where the function is
/// "defined". Identity matters for the paper's analyses — e.g. invalid
/// listener removal is precisely "a different function object that looks
/// the same", and recursive-microtask detection compares FunctionIds.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_FUNCTION_H
#define ASYNCG_JSRT_FUNCTION_H

#include "jsrt/Completion.h"
#include "jsrt/Ids.h"
#include "jsrt/Value.h"
#include "support/SourceLocation.h"

#include <functional>
#include <string>
#include <utility>

namespace asyncg {
namespace jsrt {

class Runtime;

/// Arguments to a function invocation.
class CallArgs {
public:
  CallArgs() = default;
  explicit CallArgs(std::vector<Value> Args) : Args(std::move(Args)) {}
  CallArgs(Value ThisVal, std::vector<Value> Args)
      : ThisVal(std::move(ThisVal)), Args(std::move(Args)) {}

  size_t size() const { return Args.size(); }

  /// Returns argument \p I, or undefined when absent (JS semantics).
  const Value &arg(size_t I) const {
    static const Value Undef;
    return I < Args.size() ? Args[I] : Undef;
  }

  const Value &thisValue() const { return ThisVal; }
  const std::vector<Value> &all() const { return Args; }

private:
  Value ThisVal;
  std::vector<Value> Args;
};

/// The C++ signature of a JS function body.
using FunctionBody = std::function<Completion(Runtime &, const CallArgs &)>;

/// Shared payload of a function value.
struct FunctionData {
  FunctionId Id = 0;
  std::string Name;
  SourceLocation Loc;
  bool IsBuiltin = false;
  FunctionBody Body;
};

/// Lightweight handle to a function. Comparable by identity.
class Function {
public:
  Function() = default;
  explicit Function(FunctionRef Data) : Data(std::move(Data)) {}

  bool isValid() const { return Data != nullptr; }
  explicit operator bool() const { return isValid(); }

  FunctionId id() const { return Data ? Data->Id : 0; }
  const std::string &name() const {
    static const std::string Empty;
    return Data ? Data->Name : Empty;
  }
  const SourceLocation &loc() const {
    static const SourceLocation Invalid;
    return Data ? Data->Loc : Invalid;
  }
  bool isBuiltin() const { return Data && Data->IsBuiltin; }

  const FunctionRef &ref() const { return Data; }
  Value toValue() const { return Value::function(Data); }

  /// Identity comparison: the semantics of removeListener.
  bool sameAs(const Function &RHS) const { return Data == RHS.Data; }

private:
  FunctionRef Data;
};

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_FUNCTION_H
