//===- Object.h - Property-map objects and arrays ---------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain JS-like objects (ordered property maps) and arrays. These are what
/// the motivating bugs of the paper manipulate — e.g. the §III example
/// crashes because `foo.bar` is read from an object before the callback
/// that assigns it has executed.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_OBJECT_H
#define ASYNCG_JSRT_OBJECT_H

#include "jsrt/Value.h"

#include <map>
#include <string>

namespace asyncg {
namespace jsrt {

/// A plain object: an ordered string-keyed property map.
class Object {
public:
  Object() = default;
  explicit Object(std::string ClassName) : ClassName(std::move(ClassName)) {}

  /// Returns the property value, or undefined when absent.
  const Value &get(const std::string &Key) const {
    static const Value Undef;
    auto It = Props.find(Key);
    return It == Props.end() ? Undef : It->second;
  }

  void set(const std::string &Key, Value V) { Props[Key] = std::move(V); }
  bool has(const std::string &Key) const { return Props.count(Key) != 0; }
  bool erase(const std::string &Key) { return Props.erase(Key) != 0; }
  size_t size() const { return Props.size(); }

  const std::map<std::string, Value> &properties() const { return Props; }
  const std::string &className() const { return ClassName; }

  /// Makes a fresh empty object value.
  static Value make(std::string ClassName = "Object") {
    return Value::object(std::make_shared<Object>(std::move(ClassName)));
  }

private:
  std::string ClassName = "Object";
  std::map<std::string, Value> Props;
};

/// A JS array: a vector of values.
struct ArrayData {
  std::vector<Value> Elems;

  size_t size() const { return Elems.size(); }
  void push(Value V) { Elems.push_back(std::move(V)); }
  const Value &at(size_t I) const {
    static const Value Undef;
    return I < Elems.size() ? Elems[I] : Undef;
  }

  /// Makes a fresh array value.
  static Value make(std::vector<Value> Elems = {}) {
    auto A = std::make_shared<ArrayData>();
    A->Elems = std::move(Elems);
    return Value::array(std::move(A));
  }
};

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_OBJECT_H
