//===- Emitter.h - Node-style EventEmitter state ----------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EventEmitter state: per-event listener lists. Listener invocation is
/// synchronous (Node semantics) and lives on Runtime so CT/CE
/// instrumentation events fire. Emitters created by internal libraries
/// (net/http servers and sockets) are flagged Internal and render as "*"
/// nodes in the graph, matching the paper's figures.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_EMITTER_H
#define ASYNCG_JSRT_EMITTER_H

#include "jsrt/ApiKind.h"
#include "jsrt/Function.h"
#include "jsrt/Ids.h"
#include "support/SourceLocation.h"

#include <map>
#include <string>
#include <vector>

namespace asyncg {
namespace jsrt {

/// One registered listener.
struct Listener {
  Function Fn;
  bool Once = false;
  /// The registration this listener came from (CR node identity).
  ScheduleId Sched = 0;
  /// The API that registered it (on/once/prependListener).
  ApiKind Via = ApiKind::EmitterOn;
};

/// Heap state of one event emitter.
class EmitterData {
public:
  ObjectId Id = 0;
  /// Debug name ("EventEmitter", "http.Server", "Socket", ...).
  std::string Name = "EventEmitter";
  /// True for emitters created by internal libraries.
  bool Internal = false;
  SourceLocation CreatedAt;
  /// Per-event listener lists, in invocation order.
  std::map<std::string, std::vector<Listener>> Events;

  size_t listenerCount(const std::string &Event) const {
    auto It = Events.find(Event);
    return It == Events.end() ? 0 : It->second.size();
  }

  bool hasListeners(const std::string &Event) const {
    return listenerCount(Event) != 0;
  }

  /// All event names with at least one listener.
  std::vector<std::string> eventNames() const {
    std::vector<std::string> Names;
    for (const auto &[Name, Ls] : Events)
      if (!Ls.empty())
        Names.push_back(Name);
    return Names;
  }
};

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_EMITTER_H
