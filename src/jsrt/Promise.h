//===- Promise.h - ECMAScript-style promise state ---------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Promise state per ECMAScript: pending/fulfilled/rejected, a settled
/// value, and reaction lists drained onto the promise micro-task queue.
/// All operations (then/resolve/reject/combinators) live on Runtime, since
/// they schedule micro-tasks and fire instrumentation events.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_PROMISE_H
#define ASYNCG_JSRT_PROMISE_H

#include "jsrt/ApiKind.h"
#include "jsrt/Function.h"
#include "jsrt/Ids.h"
#include "jsrt/Value.h"
#include "support/SourceLocation.h"

#include <vector>

namespace asyncg {
namespace jsrt {

/// Promise lifecycle states.
enum class PromiseState {
  Pending,
  Fulfilled,
  Rejected,
};

inline const char *promiseStateName(PromiseState S) {
  switch (S) {
  case PromiseState::Pending:
    return "pending";
  case PromiseState::Fulfilled:
    return "fulfilled";
  case PromiseState::Rejected:
    return "rejected";
  }
  return "unknown";
}

/// One registered reaction pair (created by then/catch/finally/await or by
/// internal machinery such as combinators and state adoption).
struct PromiseReaction {
  /// User handler for fulfillment; invalid means pass the value through.
  Function OnFulfill;
  /// User handler for rejection; invalid means pass the rejection through.
  Function OnReject;
  /// The promise resolved/rejected with the handler's result.
  PromiseRef Derived;
  /// The registration this reaction came from (CR node identity).
  ScheduleId Sched = 0;
  /// The API that registered it (then/catch/finally/await/internal).
  ApiKind Via = ApiKind::None;
};

/// Heap state of one promise.
class PromiseData {
public:
  ObjectId Id = 0;
  PromiseState State = PromiseState::Pending;
  /// Settled value (fulfillment value or rejection reason).
  Value Result;
  /// Reactions waiting for settlement (drained when the promise settles).
  std::vector<PromiseReaction> Reactions;
  /// True once any reaction (incl. await/adoption) has been attached; a
  /// rejected promise that is never Handled is an unhandled rejection.
  bool Handled = false;
  /// True for promises created by internal machinery (combinators, async
  /// function results are *not* internal; adoption helpers are).
  bool Internal = false;
  /// Where the promise was created (OB node location).
  SourceLocation CreatedAt;
  /// The trigger action (CT) that settled this promise; 0 while pending.
  /// Reactions attached after settlement link their CEs to this trigger.
  TriggerId SettleTrigger = 0;
  /// Set while resolve() is adopting another promise's state: further
  /// resolve/reject calls must be ignored (the promise is "resolved" though
  /// still pending).
  bool AlreadyResolved = false;

  bool isPending() const { return State == PromiseState::Pending; }
  bool isSettled() const { return State != PromiseState::Pending; }
};

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_PROMISE_H
