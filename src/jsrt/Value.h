//===- Value.h - Dynamic JavaScript-like values -----------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic value type flowing through the jsrt runtime: undefined, null,
/// booleans, numbers, strings, objects, arrays, functions, promises,
/// emitters, and opaque externals (used by the node layer to attach C++
/// state such as HTTP response writers to JS-visible values).
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_VALUE_H
#define ASYNCG_JSRT_VALUE_H

#include <cassert>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace asyncg {
namespace jsrt {

class Object;
struct ArrayData;
struct FunctionData;
class PromiseData;
class EmitterData;

using ObjectRef = std::shared_ptr<Object>;
using ArrayRef = std::shared_ptr<ArrayData>;
using FunctionRef = std::shared_ptr<FunctionData>;
using PromiseRef = std::shared_ptr<PromiseData>;
using EmitterRef = std::shared_ptr<EmitterData>;

/// Discriminates the dynamic type of a Value.
enum class ValueKind {
  Undefined,
  Null,
  Boolean,
  Number,
  String,
  Object,
  Array,
  Function,
  Promise,
  Emitter,
  External,
};

/// An opaque C++ payload attached to a JS-visible value. \p Tag is a static
/// string identifying the payload type (checked on extraction).
struct External {
  std::shared_ptr<void> Ptr;
  const char *Tag = "";
};

/// A dynamically typed JavaScript-like value. Copying is cheap: strings and
/// heap entities are reference counted.
class Value {
  struct UndefinedTag {};
  struct NullTag {};
  using Storage =
      std::variant<UndefinedTag, NullTag, bool, double,
                   std::shared_ptr<const std::string>, ObjectRef, ArrayRef,
                   FunctionRef, PromiseRef, EmitterRef, External>;

public:
  /// Default-constructs undefined.
  Value() : V(UndefinedTag{}) {}

  static Value undefined() { return Value(); }
  static Value null() {
    Value R;
    R.V = NullTag{};
    return R;
  }
  static Value boolean(bool B) {
    Value R;
    R.V = B;
    return R;
  }
  static Value number(double D) {
    Value R;
    R.V = D;
    return R;
  }
  static Value str(std::string S) {
    Value R;
    R.V = std::make_shared<const std::string>(std::move(S));
    return R;
  }
  static Value object(ObjectRef O) {
    Value R;
    R.V = std::move(O);
    return R;
  }
  static Value array(ArrayRef A) {
    Value R;
    R.V = std::move(A);
    return R;
  }
  static Value function(FunctionRef F) {
    Value R;
    R.V = std::move(F);
    return R;
  }
  static Value promise(PromiseRef P) {
    Value R;
    R.V = std::move(P);
    return R;
  }
  static Value emitter(EmitterRef E) {
    Value R;
    R.V = std::move(E);
    return R;
  }
  static Value external(std::shared_ptr<void> Ptr, const char *Tag) {
    Value R;
    R.V = External{std::move(Ptr), Tag};
    return R;
  }

  ValueKind kind() const {
    return static_cast<ValueKind>(V.index());
  }

  bool isUndefined() const { return kind() == ValueKind::Undefined; }
  bool isNull() const { return kind() == ValueKind::Null; }
  bool isNullish() const { return isUndefined() || isNull(); }
  bool isBoolean() const { return kind() == ValueKind::Boolean; }
  bool isNumber() const { return kind() == ValueKind::Number; }
  bool isString() const { return kind() == ValueKind::String; }
  bool isObject() const { return kind() == ValueKind::Object; }
  bool isArray() const { return kind() == ValueKind::Array; }
  bool isFunction() const { return kind() == ValueKind::Function; }
  bool isPromise() const { return kind() == ValueKind::Promise; }
  bool isEmitter() const { return kind() == ValueKind::Emitter; }
  bool isExternal() const { return kind() == ValueKind::External; }

  bool asBoolean() const {
    assert(isBoolean() && "not a boolean");
    return std::get<bool>(V);
  }
  double asNumber() const {
    assert(isNumber() && "not a number");
    return std::get<double>(V);
  }
  const std::string &asString() const {
    assert(isString() && "not a string");
    return *std::get<std::shared_ptr<const std::string>>(V);
  }
  const ObjectRef &asObject() const {
    assert(isObject() && "not an object");
    return std::get<ObjectRef>(V);
  }
  const ArrayRef &asArray() const {
    assert(isArray() && "not an array");
    return std::get<ArrayRef>(V);
  }
  const FunctionRef &asFunctionRef() const {
    assert(isFunction() && "not a function");
    return std::get<FunctionRef>(V);
  }
  const PromiseRef &asPromise() const {
    assert(isPromise() && "not a promise");
    return std::get<PromiseRef>(V);
  }
  const EmitterRef &asEmitter() const {
    assert(isEmitter() && "not an emitter");
    return std::get<EmitterRef>(V);
  }

  /// Extracts an external payload, asserting the tag matches.
  template <typename T> std::shared_ptr<T> asExternal(const char *Tag) const {
    assert(isExternal() && "not an external");
    const External &E = std::get<External>(V);
    assert(std::string(E.Tag) == Tag && "external tag mismatch");
    return std::static_pointer_cast<T>(E.Ptr);
  }

  /// JavaScript truthiness.
  bool toBoolean() const {
    switch (kind()) {
    case ValueKind::Undefined:
    case ValueKind::Null:
      return false;
    case ValueKind::Boolean:
      return std::get<bool>(V);
    case ValueKind::Number: {
      double D = std::get<double>(V);
      return D != 0.0 && D == D; // false for 0 and NaN
    }
    case ValueKind::String:
      return !asString().empty();
    default:
      return true;
    }
  }

  /// JavaScript `typeof` result string.
  const char *typeOf() const {
    switch (kind()) {
    case ValueKind::Undefined:
      return "undefined";
    case ValueKind::Null:
      return "object";
    case ValueKind::Boolean:
      return "boolean";
    case ValueKind::Number:
      return "number";
    case ValueKind::String:
      return "string";
    case ValueKind::Function:
      return "function";
    default:
      return "object";
    }
  }

  /// Strict equality (===): same kind; value equality for primitives,
  /// reference identity for heap entities.
  bool strictEquals(const Value &RHS) const;

  /// Renders a debug/display string ("undefined", "42", "\"s\"",
  /// "[Function f]", "[Promise #3]", ...).
  std::string toDisplayString() const;

private:
  Storage V;
};

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_VALUE_H
