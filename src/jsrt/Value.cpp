//===- Value.cpp - Dynamic JavaScript-like values ---------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "jsrt/Value.h"

#include "jsrt/Emitter.h"
#include "jsrt/Function.h"
#include "jsrt/Object.h"
#include "jsrt/Promise.h"
#include "support/Format.h"

using namespace asyncg;
using namespace asyncg::jsrt;

bool Value::strictEquals(const Value &RHS) const {
  if (kind() != RHS.kind())
    return false;
  switch (kind()) {
  case ValueKind::Undefined:
  case ValueKind::Null:
    return true;
  case ValueKind::Boolean:
    return asBoolean() == RHS.asBoolean();
  case ValueKind::Number:
    return asNumber() == RHS.asNumber();
  case ValueKind::String:
    return asString() == RHS.asString();
  case ValueKind::Object:
    return asObject() == RHS.asObject();
  case ValueKind::Array:
    return asArray() == RHS.asArray();
  case ValueKind::Function:
    return asFunctionRef() == RHS.asFunctionRef();
  case ValueKind::Promise:
    return asPromise() == RHS.asPromise();
  case ValueKind::Emitter:
    return asEmitter() == RHS.asEmitter();
  case ValueKind::External:
    return std::get<External>(V).Ptr == std::get<External>(RHS.V).Ptr;
  }
  return false;
}

std::string Value::toDisplayString() const {
  switch (kind()) {
  case ValueKind::Undefined:
    return "undefined";
  case ValueKind::Null:
    return "null";
  case ValueKind::Boolean:
    return asBoolean() ? "true" : "false";
  case ValueKind::Number:
    return formatNumber(asNumber());
  case ValueKind::String:
    return asString();
  case ValueKind::Object: {
    const ObjectRef &O = asObject();
    return strFormat("[object %s]", O->className().c_str());
  }
  case ValueKind::Array:
    return strFormat("[Array(%zu)]", asArray()->size());
  case ValueKind::Function: {
    const FunctionRef &F = asFunctionRef();
    return strFormat("[Function %s]",
                     F->Name.empty() ? "(anonymous)" : F->Name.c_str());
  }
  case ValueKind::Promise:
    return strFormat("[Promise #%llu %s]",
                     static_cast<unsigned long long>(asPromise()->Id),
                     promiseStateName(asPromise()->State));
  case ValueKind::Emitter:
    return strFormat("[%s #%llu]", asEmitter()->Name.c_str(),
                     static_cast<unsigned long long>(asEmitter()->Id));
  case ValueKind::External:
    return strFormat("[External %s]", std::get<External>(V).Tag);
  }
  return "<?>";
}
