//===- TimerHeap.h - setTimeout/setInterval timer store ---------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage for active timers. Deadlines determine *when* the timers phase
/// has work; within one timers-phase batch, due callbacks execute in
/// registration order — this reproduces the "unexpected timeout execution
/// order" behaviour of §VI-A.1c, where a timer registered earlier with a
/// larger timeout runs before a later-registered smaller one once both have
/// expired.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_JSRT_TIMERHEAP_H
#define ASYNCG_JSRT_TIMERHEAP_H

#include "jsrt/ApiKind.h"
#include "jsrt/Function.h"
#include "jsrt/Ids.h"
#include "jsrt/Value.h"
#include "sim/Clock.h"
#include "support/SourceLocation.h"

#include <map>
#include <vector>

namespace asyncg {
namespace jsrt {

/// One active timer.
struct TimerEntry {
  uint64_t Id = 0;
  /// Registration order; due timers run in ascending Seq.
  uint64_t Seq = 0;
  sim::SimTime Due = 0;
  /// Repeat interval in microseconds; 0 for one-shot timers.
  sim::SimTime IntervalUs = 0;
  double TimeoutMs = 0;
  Function Fn;
  std::vector<Value> Args;
  ScheduleId Sched = 0;
  ApiKind Api = ApiKind::SetTimeout;
  SourceLocation Loc;
};

/// The set of active timers.
class TimerHeap {
public:
  /// Adds \p E (Id/Seq must be pre-assigned by the runtime).
  void add(TimerEntry E);

  /// Cancels the timer with \p Id. Returns false if not found.
  bool cancel(uint64_t Id);

  bool empty() const { return ByDeadline.empty(); }
  size_t size() const { return ByDeadline.size(); }

  /// Earliest deadline, or sim::NoDeadline when no timers are active.
  sim::SimTime nextDeadline() const;

  /// Removes and returns every timer due at or before \p Now, sorted by
  /// registration order (see file comment). Interval timers must be
  /// re-added by the caller after running.
  std::vector<TimerEntry> takeDue(sim::SimTime Now);

private:
  // Key: (deadline, id) for ordered deadline scans.
  std::map<std::pair<sim::SimTime, uint64_t>, TimerEntry> ByDeadline;
  std::map<uint64_t, std::pair<sim::SimTime, uint64_t>> ById;
};

} // namespace jsrt
} // namespace asyncg

#endif // ASYNCG_JSRT_TIMERHEAP_H
