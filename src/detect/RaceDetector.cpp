//===- RaceDetector.cpp - data-flow races over the Async Graph ----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "detect/RaceDetector.h"

#include "support/Format.h"

#include <deque>

using namespace asyncg;
using namespace asyncg::detect;
using namespace asyncg::ag;
using namespace asyncg::jsrt;

void RaceDetector::onPropertyAccess(const instr::PropertyAccessEvent &E) {
  Access A;
  A.Obj = E.Obj;
  A.Key = E.Key;
  A.IsWrite = E.IsWrite;
  A.Loc = E.Loc;
  A.Ce = Builder.currentCe();
  A.Tick = Builder.currentTickIndex();
  A.Phase = Builder.currentTickPhase();
  Accesses.push_back(std::move(A));
}

bool RaceDetector::reaches(NodeId From, NodeId To) const {
  if (From == InvalidNode || To == InvalidNode)
    return false;
  if (From == To)
    return true;
  const AsyncGraph &G = Builder.graph();
  std::vector<bool> Seen(G.nodeCount(), false);
  std::deque<NodeId> Work;
  Work.push_back(From);
  Seen[From] = true;
  while (!Work.empty()) {
    NodeId N = Work.front();
    Work.pop_front();
    for (uint32_t EI : G.outEdges(N)) {
      const AgEdge &E = G.edge(EI);
      if (E.Kind != EdgeKind::Causal && E.Kind != EdgeKind::HappensIn)
        continue;
      if (E.To == To)
        return true;
      if (!Seen[E.To]) {
        Seen[E.To] = true;
        Work.push_back(E.To);
      }
    }
  }
  return false;
}

void RaceDetector::onLoopEnd(const instr::LoopEndEvent &E) {
  (void)E;
  Warnings.clear();

  for (size_t I = 0, N = Accesses.size(); I != N; ++I) {
    const Access &A = Accesses[I];
    if (!A.IsWrite)
      continue;
    for (size_t J = 0; J != N; ++J) {
      if (J == I)
        continue;
      const Access &B = Accesses[J];
      if (B.Obj != A.Obj || B.Key != A.Key)
        continue;
      // Same callback execution (or same tick): sequential, no race.
      if (A.Ce == B.Ce || A.Tick == B.Tick)
        continue;
      // Only consider write/read and write/write pairs once (I < J for
      // write/write symmetry).
      if (B.IsWrite && J < I)
        continue;
      // Causally ordered either way: fine.
      if (reaches(A.Ce, B.Ce) || reaches(B.Ce, A.Ce))
        continue;
      // Deterministic micro-task interleavings are not races.
      if (!isExternalPhase(A.Phase) && !isExternalPhase(B.Phase))
        continue;

      std::string DedupKey = A.Loc.str() + "|" + B.Loc.str() + "|" + A.Key;
      if (!Reported.insert(DedupKey).second)
        continue;

      Warning W;
      W.Category = BugCategory::EventRace;
      W.Loc = A.Loc;
      W.Node = A.Ce;
      W.Tick = A.Tick;
      W.Message = strFormat(
          "property '%s' written at %s (tick %u, %s phase) and %s at %s "
          "(tick %u, %s phase) with no causal ordering: the outcome "
          "depends on event arrival order",
          A.Key.c_str(), A.Loc.str().c_str(), A.Tick,
          phaseKindName(A.Phase), B.IsWrite ? "written" : "read",
          B.Loc.str().c_str(), B.Tick, phaseKindName(B.Phase));
      Warnings.push_back(W);
      Builder.graph().addWarning(std::move(W));
    }
  }
}
