//===- Detectors.h - Automatic bug detectors over the AG --------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automatic bug detectors of §VI-A, implemented as graph observers
/// that analyze the Async Graph online (as it is built) plus an end-of-run
/// pass for liveness properties (dead listeners, dead promises, missing
/// reactions, missing exception handlers, missing returns).
///
/// Scheduling bugs:   RecursiveMicrotask, MixedSimilarApis,
///                    TimeoutExecutionOrder.
/// Emitter bugs:      DeadListener, DeadEmit, InvalidListenerRemoval,
///                    DuplicateListener, AddListenerWithinListener.
/// Promise bugs:      DeadPromise, MissingReaction,
///                    MissingExceptionalReaction, MissingReturnInThen,
///                    DoubleSettle.
///
/// Use DetectorSuite to attach all of them at once:
/// \code
///   ag::AsyncGBuilder Builder;
///   detect::DetectorSuite Detectors;
///   Detectors.attachTo(Builder);
///   RT.hooks().attach(&Builder);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_DETECT_DETECTORS_H
#define ASYNCG_DETECT_DETECTORS_H

#include "ag/Builder.h"
#include "ag/Graph.h"
#include "ag/Observer.h"
#include "support/FlatMap.h"

#include <map>
#include <set>
#include <string>
#include <tuple>

namespace asyncg {
namespace detect {

/// Detector tunables.
struct DetectorConfig {
  /// Warn on recursive micro-task scheduling from the Nth consecutive
  /// micro-tick self-registration on (1 warns on the first recursion, as
  /// the paper's Fig. 3(a) does starting at t2).
  unsigned RecursiveMicrotaskThreshold = 1;
  /// setTimeout delays at or below this (ms) count as "setTimeout(0)" for
  /// the Mixing-Similar-APIs family.
  double ZeroTimeoutMs = 1.0;
  /// Live listeners for one (emitter, event) beyond this trigger the
  /// Listener-Leak warning (Node's MaxListenersExceededWarning default).
  unsigned MaxListeners = 10;
};

/// Base class for detectors: carries the config and a warning helper.
class DetectorBase : public ag::GraphObserver {
public:
  explicit DetectorBase(const DetectorConfig &Config) : Config(Config) {}

protected:
  /// Adds a warning anchored at \p Node. Sticky warnings are definitive
  /// verdicts (issued at release events) that survive clearWarnings.
  void warn(ag::AsyncGBuilder &B, ag::BugCategory Cat, ag::NodeId Node,
            std::string Message, bool Sticky = false);

  /// Adds a node-less warning (e.g. invalid listener removal call sites).
  void warnAt(ag::AsyncGBuilder &B, ag::BugCategory Cat, SourceLocation Loc,
              std::string Message);

  const DetectorConfig &Config;
};

//===----------------------------------------------------------------------===//
// Scheduling-bug detectors (§VI-A.1)
//===----------------------------------------------------------------------===//

/// §VI-A.1a: recursive micro-tasks starve every other queue (Fig. 1).
class RecursiveMicrotaskDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "recursive-microtask"; }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;

private:
  std::map<jsrt::FunctionId, unsigned> Streak;
};

/// §VI-A.1b: mixing nextTick / setTimeout(0) / setImmediate in one tick.
class MixedSimilarApisDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "mixed-similar-apis"; }
  void onTickStart(ag::AsyncGBuilder &B, const ag::AgTick &T) override;
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;

private:
  /// Deferral families seen in the current tick -> first CR node.
  std::map<int, ag::NodeId> SeenFamilies;
};

/// §VI-A.1c: a same-tick setTimeout with a larger delay executed before a
/// sibling with a smaller delay.
class TimeoutOrderDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "timeout-order"; }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
  void onRegionRetire(ag::AsyncGBuilder &B, uint32_t TickIndex) override;

private:
  /// setTimeout CR nodes grouped by registration tick; a tick's group is
  /// dropped when its region retires (the sibling ids die with it).
  std::map<uint32_t, std::vector<ag::NodeId>> ByTick;
};

//===----------------------------------------------------------------------===//
// Emitter-bug detectors (§VI-A.2)
//===----------------------------------------------------------------------===//

/// §VI-A.2a: listeners that never executed. Incremental: a pending set of
/// never-executed listener CRs is maintained from graph events, so the
/// end-of-run pass is O(pending) instead of a full node sweep, and a
/// listener whose emitter is released gets a definitive (sticky) warning
/// at the release point — before the region can be retired.
class DeadListenerDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "dead-listener"; }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
  void onEdgeAdded(ag::AsyncGBuilder &B, const ag::AgEdge &E) override;
  void onRegistrationRemoved(ag::AsyncGBuilder &B, ag::NodeId Cr) override;
  void onRegistrationReleased(ag::AsyncGBuilder &B, ag::NodeId Cr) override;
  void onEnd(ag::AsyncGBuilder &B) override;

private:
  /// Non-internal listener CRs that never executed. Every member's
  /// registration is still pending in the builder, which pins its region:
  /// members are always live nodes.
  FlatMap<ag::NodeId, char> PendingSet;
};

/// §VI-A.2b: emits with no registered listener (online).
class DeadEmitDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "dead-emit"; }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
};

/// §VI-A.2c: removeListener with a function that was never registered.
class InvalidRemovalDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "invalid-removal"; }
  void onApiEvent(ag::AsyncGBuilder &B,
                  const instr::ApiCallEvent &E) override;
};

/// §VI-A.2d: the same function registered twice for the same event.
class DuplicateListenerDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "duplicate-listener"; }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
  void onApiEvent(ag::AsyncGBuilder &B,
                  const instr::ApiCallEvent &E) override;
  void onObjectReleased(ag::AsyncGBuilder &B, ag::NodeId Ob,
                        jsrt::ObjectId Obj, bool IsPromise) override;

private:
  using Key = std::tuple<jsrt::ObjectId, Symbol, jsrt::FunctionId>;
  /// Live listener counts; entries of a released emitter are purged so the
  /// map stays proportional to the live emitters.
  std::map<Key, unsigned> Live;
};

/// Extra (beyond the paper, Node's MaxListenersExceededWarning): more than
/// MaxListeners live listeners for one (emitter, event) — usually a
/// subscription leak (a listener added per request and never removed).
class ListenerLeakDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "listener-leak"; }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
  void onApiEvent(ag::AsyncGBuilder &B,
                  const instr::ApiCallEvent &E) override;
  void onObjectReleased(ag::AsyncGBuilder &B, ag::NodeId Ob,
                        jsrt::ObjectId Obj, bool IsPromise) override;

private:
  using Key = std::pair<jsrt::ObjectId, Symbol>;
  /// Live listener counts per (emitter, event); purged on emitter release.
  std::map<Key, unsigned> Live;
};

/// §VI-A.2e: a listener registered during another listener of the same
/// emitter (can be lost if the outer listener never runs, SO-17894000).
class AddListenerWithinListenerDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override {
    return "add-listener-within-listener";
  }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
};

//===----------------------------------------------------------------------===//
// Promise-bug detectors (§VI-A.3)
//===----------------------------------------------------------------------===//

/// Shared promise bookkeeping: which promises settled / gained reactions.
/// §VI-A.3a (DeadPromise), 3b (MissingReaction), 3c
/// (MissingExceptionalReaction), 3d (MissingReturn), 3e (DoubleSettle).
///
/// Incremental: one compact state record per live non-internal promise,
/// maintained from node/edge events. When the runtime releases a promise
/// its fate is final (nothing can settle it or react to it any more), so
/// its verdicts are issued as sticky warnings and the record is dropped —
/// the liveness passes never sweep the graph, and state is proportional
/// to the live promises.
class PromiseDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "promise-bugs"; }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
  void onEdgeAdded(ag::AsyncGBuilder &B, const ag::AgEdge &E) override;
  void onObjectReleased(ag::AsyncGBuilder &B, ag::NodeId Ob,
                        jsrt::ObjectId Obj, bool IsPromise) override;
  void onEnd(ag::AsyncGBuilder &B) override;

private:
  /// Everything the liveness warnings need to decide a promise's fate.
  struct PromState {
    ag::NodeId Ob = ag::InvalidNode;
    bool Settled = false;
    bool Reacted = false;
    bool RejectHandled = false;
    /// Derived from another promise via then/catch/finally (not a root).
    bool HasParent = false;
    /// Reject-handler bit of the newest CR deriving this promise.
    bool DerivingCrHasReject = false;
    /// Outgoing then/catch/finally derivations; "then" only.
    uint32_t DerivedCount = 0;
    uint32_t DerivedThenCount = 0;
  };

  /// Issues the liveness warnings for one promise's final (release) or
  /// current (end-of-run) state. The OB node is live in both cases.
  void judge(ag::AsyncGBuilder &B, const PromState &P, bool Sticky);

  FlatMap<jsrt::ObjectId, PromState> Proms;
  /// Scratch for the end-of-run pass (sorted for deterministic output).
  std::vector<const PromState *> EndScratch;
};

//===----------------------------------------------------------------------===//
// The full suite
//===----------------------------------------------------------------------===//

/// Owns one instance of every detector and forwards observer callbacks.
/// Individual detectors can be disabled before attaching.
class DetectorSuite : public ag::GraphObserver {
  /// Declared before the detectors: they hold references into it.
  DetectorConfig Config;

public:
  explicit DetectorSuite(DetectorConfig Config = DetectorConfig());

  const char *observerName() const override { return "detectors"; }

  /// Registers the suite with \p B.
  void attachTo(ag::AsyncGBuilder &B) { B.addObserver(this); }

  /// Disables a detector (before running).
  void disable(ag::GraphObserver *D);

  /// Enabled detectors.
  const std::vector<ag::GraphObserver *> &detectors() const { return Active; }

  RecursiveMicrotaskDetector Recursive;
  MixedSimilarApisDetector Mixed;
  TimeoutOrderDetector TimeoutOrder;
  DeadListenerDetector DeadListener;
  DeadEmitDetector DeadEmit;
  InvalidRemovalDetector InvalidRemoval;
  DuplicateListenerDetector Duplicate;
  AddListenerWithinListenerDetector AddWithin;
  ListenerLeakDetector LeakDetector;
  PromiseDetector Promises;

  void onTickStart(ag::AsyncGBuilder &B, const ag::AgTick &T) override;
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
  void onEdgeAdded(ag::AsyncGBuilder &B, const ag::AgEdge &E) override;
  void onApiEvent(ag::AsyncGBuilder &B,
                  const instr::ApiCallEvent &E) override;
  void onRegistrationRemoved(ag::AsyncGBuilder &B, ag::NodeId Cr) override;
  void onRegistrationReleased(ag::AsyncGBuilder &B, ag::NodeId Cr) override;
  void onObjectReleased(ag::AsyncGBuilder &B, ag::NodeId Ob,
                        jsrt::ObjectId Obj, bool IsPromise) override;
  void onRegionRetire(ag::AsyncGBuilder &B, uint32_t TickIndex) override;
  void onEnd(ag::AsyncGBuilder &B) override;

private:
  std::vector<ag::GraphObserver *> Active;
};

} // namespace detect
} // namespace asyncg

#endif // ASYNCG_DETECT_DETECTORS_H
