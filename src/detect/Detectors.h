//===- Detectors.h - Automatic bug detectors over the AG --------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automatic bug detectors of §VI-A, implemented as graph observers
/// that analyze the Async Graph online (as it is built) plus an end-of-run
/// pass for liveness properties (dead listeners, dead promises, missing
/// reactions, missing exception handlers, missing returns).
///
/// Scheduling bugs:   RecursiveMicrotask, MixedSimilarApis,
///                    TimeoutExecutionOrder.
/// Emitter bugs:      DeadListener, DeadEmit, InvalidListenerRemoval,
///                    DuplicateListener, AddListenerWithinListener.
/// Promise bugs:      DeadPromise, MissingReaction,
///                    MissingExceptionalReaction, MissingReturnInThen,
///                    DoubleSettle.
///
/// Use DetectorSuite to attach all of them at once:
/// \code
///   ag::AsyncGBuilder Builder;
///   detect::DetectorSuite Detectors;
///   Detectors.attachTo(Builder);
///   RT.hooks().attach(&Builder);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_DETECT_DETECTORS_H
#define ASYNCG_DETECT_DETECTORS_H

#include "ag/Builder.h"
#include "ag/Graph.h"
#include "ag/Observer.h"

#include <map>
#include <set>
#include <string>
#include <tuple>

namespace asyncg {
namespace detect {

/// Detector tunables.
struct DetectorConfig {
  /// Warn on recursive micro-task scheduling from the Nth consecutive
  /// micro-tick self-registration on (1 warns on the first recursion, as
  /// the paper's Fig. 3(a) does starting at t2).
  unsigned RecursiveMicrotaskThreshold = 1;
  /// setTimeout delays at or below this (ms) count as "setTimeout(0)" for
  /// the Mixing-Similar-APIs family.
  double ZeroTimeoutMs = 1.0;
  /// Live listeners for one (emitter, event) beyond this trigger the
  /// Listener-Leak warning (Node's MaxListenersExceededWarning default).
  unsigned MaxListeners = 10;
};

/// Base class for detectors: carries the config and a warning helper.
class DetectorBase : public ag::GraphObserver {
public:
  explicit DetectorBase(const DetectorConfig &Config) : Config(Config) {}

protected:
  /// Adds a warning anchored at \p Node.
  void warn(ag::AsyncGBuilder &B, ag::BugCategory Cat, ag::NodeId Node,
            std::string Message);

  /// Adds a node-less warning (e.g. invalid listener removal call sites).
  void warnAt(ag::AsyncGBuilder &B, ag::BugCategory Cat, SourceLocation Loc,
              std::string Message);

  const DetectorConfig &Config;
};

//===----------------------------------------------------------------------===//
// Scheduling-bug detectors (§VI-A.1)
//===----------------------------------------------------------------------===//

/// §VI-A.1a: recursive micro-tasks starve every other queue (Fig. 1).
class RecursiveMicrotaskDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "recursive-microtask"; }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;

private:
  std::map<jsrt::FunctionId, unsigned> Streak;
};

/// §VI-A.1b: mixing nextTick / setTimeout(0) / setImmediate in one tick.
class MixedSimilarApisDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "mixed-similar-apis"; }
  void onTickStart(ag::AsyncGBuilder &B, const ag::AgTick &T) override;
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;

private:
  /// Deferral families seen in the current tick -> first CR node.
  std::map<int, ag::NodeId> SeenFamilies;
};

/// §VI-A.1c: a same-tick setTimeout with a larger delay executed before a
/// sibling with a smaller delay.
class TimeoutOrderDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "timeout-order"; }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;

private:
  /// setTimeout CR nodes grouped by registration tick.
  std::map<uint32_t, std::vector<ag::NodeId>> ByTick;
};

//===----------------------------------------------------------------------===//
// Emitter-bug detectors (§VI-A.2)
//===----------------------------------------------------------------------===//

/// §VI-A.2a: listeners that never executed (end-of-run).
class DeadListenerDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "dead-listener"; }
  void onEnd(ag::AsyncGBuilder &B) override;
};

/// §VI-A.2b: emits with no registered listener (online).
class DeadEmitDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "dead-emit"; }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
};

/// §VI-A.2c: removeListener with a function that was never registered.
class InvalidRemovalDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "invalid-removal"; }
  void onApiEvent(ag::AsyncGBuilder &B,
                  const instr::ApiCallEvent &E) override;
};

/// §VI-A.2d: the same function registered twice for the same event.
class DuplicateListenerDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "duplicate-listener"; }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
  void onApiEvent(ag::AsyncGBuilder &B,
                  const instr::ApiCallEvent &E) override;

private:
  using Key = std::tuple<jsrt::ObjectId, Symbol, jsrt::FunctionId>;
  std::map<Key, unsigned> Live;
};

/// Extra (beyond the paper, Node's MaxListenersExceededWarning): more than
/// MaxListeners live listeners for one (emitter, event) — usually a
/// subscription leak (a listener added per request and never removed).
class ListenerLeakDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "listener-leak"; }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
  void onApiEvent(ag::AsyncGBuilder &B,
                  const instr::ApiCallEvent &E) override;

private:
  using Key = std::pair<jsrt::ObjectId, Symbol>;
  std::map<Key, unsigned> Live;
};

/// §VI-A.2e: a listener registered during another listener of the same
/// emitter (can be lost if the outer listener never runs, SO-17894000).
class AddListenerWithinListenerDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override {
    return "add-listener-within-listener";
  }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
};

//===----------------------------------------------------------------------===//
// Promise-bug detectors (§VI-A.3)
//===----------------------------------------------------------------------===//

/// Shared promise bookkeeping: which promises settled / gained reactions.
/// §VI-A.3a (DeadPromise), 3b (MissingReaction), 3c
/// (MissingExceptionalReaction), 3d (MissingReturn), 3e (DoubleSettle).
class PromiseDetector : public DetectorBase {
public:
  using DetectorBase::DetectorBase;
  const char *observerName() const override { return "promise-bugs"; }
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
  void onEnd(ag::AsyncGBuilder &B) override;

private:
  std::set<jsrt::ObjectId> Settled;
  std::set<jsrt::ObjectId> Reacted;
  std::set<jsrt::ObjectId> RejectHandled;
};

//===----------------------------------------------------------------------===//
// The full suite
//===----------------------------------------------------------------------===//

/// Owns one instance of every detector and forwards observer callbacks.
/// Individual detectors can be disabled before attaching.
class DetectorSuite : public ag::GraphObserver {
  /// Declared before the detectors: they hold references into it.
  DetectorConfig Config;

public:
  explicit DetectorSuite(DetectorConfig Config = DetectorConfig());

  const char *observerName() const override { return "detectors"; }

  /// Registers the suite with \p B.
  void attachTo(ag::AsyncGBuilder &B) { B.addObserver(this); }

  /// Disables a detector (before running).
  void disable(ag::GraphObserver *D);

  /// Enabled detectors.
  const std::vector<ag::GraphObserver *> &detectors() const { return Active; }

  RecursiveMicrotaskDetector Recursive;
  MixedSimilarApisDetector Mixed;
  TimeoutOrderDetector TimeoutOrder;
  DeadListenerDetector DeadListener;
  DeadEmitDetector DeadEmit;
  InvalidRemovalDetector InvalidRemoval;
  DuplicateListenerDetector Duplicate;
  AddListenerWithinListenerDetector AddWithin;
  ListenerLeakDetector LeakDetector;
  PromiseDetector Promises;

  void onTickStart(ag::AsyncGBuilder &B, const ag::AgTick &T) override;
  void onNodeAdded(ag::AsyncGBuilder &B, ag::NodeId N) override;
  void onEdgeAdded(ag::AsyncGBuilder &B, const ag::AgEdge &E) override;
  void onApiEvent(ag::AsyncGBuilder &B,
                  const instr::ApiCallEvent &E) override;
  void onEnd(ag::AsyncGBuilder &B) override;

private:
  std::vector<ag::GraphObserver *> Active;
};

} // namespace detect
} // namespace asyncg

#endif // ASYNCG_DETECT_DETECTORS_H
