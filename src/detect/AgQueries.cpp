//===- AgQueries.cpp - AG queries for manual bug patterns --------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "detect/AgQueries.h"

#include "support/Format.h"

#include <climits>
#include <cstdint>

using namespace asyncg;
using namespace asyncg::detect;
using namespace asyncg::ag;
using namespace asyncg::jsrt;

int asyncg::detect::ticksUntilExecution(const AsyncGraph &G,
                                        ScheduleId Sched) {
  NodeId Cr = G.registrationNode(Sched);
  if (Cr == InvalidNode)
    return -1;
  std::vector<NodeId> Execs = G.executionsOf(Sched);
  if (Execs.empty())
    return -1;
  uint32_t First = UINT32_MAX;
  for (NodeId E : Execs)
    First = std::min(First, G.node(E).Tick);
  // Tick indices are uint32_t; compute the gap in 64 bits and clamp into
  // the int result (negative gaps cannot happen: an execution never
  // precedes its registration).
  int64_t Gap =
      static_cast<int64_t>(First) - static_cast<int64_t>(G.node(Cr).Tick);
  if (Gap < 0)
    Gap = 0;
  if (Gap > INT_MAX)
    Gap = INT_MAX;
  return static_cast<int>(Gap);
}

bool asyncg::detect::reportExpectSyncCallback(AsyncGraph &G,
                                              ScheduleId Sched) {
  NodeId Cr = G.registrationNode(Sched);
  if (Cr == InvalidNode)
    return false;
  int Gap = ticksUntilExecution(G, Sched);
  if (Gap == 0)
    return false;
  const AgNode &Reg = G.node(Cr);
  Warning W;
  W.Category = BugCategory::ExpectSyncCallback;
  W.Node = Cr;
  W.Loc = Reg.Loc;
  W.Tick = Reg.Tick;
  W.Message =
      Gap < 0
          ? strFormat("callback registered via %s never executed; code "
                      "after the registration cannot observe its effects",
                      apiKindName(Reg.Api))
          : strFormat("callback registered via %s executes %d tick(s) "
                      "later; code following the registration runs first "
                      "and cannot observe its effects",
                      apiKindName(Reg.Api), Gap);
  return G.addWarning(std::move(W));
}

std::vector<NodeId>
asyncg::detect::findDroppedChainPromises(const AsyncGraph &G) {
  std::vector<NodeId> Out;
  for (const AgNode &N : G.nodes()) {
    // Retired slots are dead until the freelist recycles them.
    if (N.Id == InvalidNode)
      continue;
    if (N.Kind != NodeKind::OB || !N.IsPromise || N.Internal)
      continue;
    // Created during a reaction body?
    bool InReaction = false;
    for (uint32_t E : G.inEdges(N.Id)) {
      const AgEdge &Edge = G.edge(E);
      if (Edge.Kind != EdgeKind::HappensIn)
        continue;
      const AgNode &From = G.node(Edge.From);
      if (From.Kind == NodeKind::CE &&
          (From.Api == ApiKind::PromiseThen ||
           From.Api == ApiKind::PromiseCatch ||
           From.Api == ApiKind::PromiseFinally)) {
        InReaction = true;
        break;
      }
    }
    if (!InReaction)
      continue;
    // Linked into the chain (returned from the reaction)?
    bool Linked = false;
    for (uint32_t E : G.outEdges(N.Id)) {
      const AgEdge &Edge = G.edge(E);
      if (Edge.Kind == EdgeKind::Relation && Edge.Label == "link") {
        Linked = true;
        break;
      }
    }
    if (Linked)
      continue;
    // Reacted to directly (then/catch/await attached)?
    bool Reacted = false;
    for (uint32_t E : G.outEdges(N.Id)) {
      const AgEdge &Edge = G.edge(E);
      if (Edge.Kind != EdgeKind::Relation)
        continue;
      const AgNode &To = G.node(Edge.To);
      if (To.Kind == NodeKind::CR || (To.Kind == NodeKind::OB && To.IsPromise)) {
        Reacted = true;
        break;
      }
    }
    if (!Reacted)
      Out.push_back(N.Id);
  }
  return Out;
}

unsigned asyncg::detect::reportBrokenPromiseChains(AsyncGraph &G) {
  unsigned Added = 0;

  for (NodeId N : findDroppedChainPromises(G)) {
    const AgNode &Ob = G.node(N);
    Warning W;
    W.Category = BugCategory::BrokenPromiseChain;
    W.Node = N;
    W.Loc = Ob.Loc;
    W.Tick = Ob.Tick;
    W.Message = "promise created inside a reaction but neither returned "
                "nor reacted to: it is detached from the chain";
    if (G.addWarning(std::move(W)))
      ++Added;
  }

  // Missing-return breaks: the chain continues past a reaction that
  // returned undefined (SO-50996870).
  for (const AgNode &N : G.nodes()) {
    if (N.Id == InvalidNode)
      continue;
    if (N.Kind != NodeKind::OB || !N.IsPromise || N.Internal)
      continue;
    if (!N.ReactionReturnedUndefined ||
        G.derivedPromises(N.Id, "then").empty())
      continue;
    Warning W;
    W.Category = BugCategory::BrokenPromiseChain;
    W.Node = N.Id;
    W.Loc = N.Loc;
    W.Tick = N.Tick;
    W.Message = "chain broken: the reaction resolving this promise "
                "returned undefined, so downstream reactions receive "
                "undefined instead of the intended value";
    if (G.addWarning(std::move(W)))
      ++Added;
  }
  return Added;
}
