//===- AgQueries.h - AG queries for manual bug patterns ---------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §VI-B: some patterns are not necessarily bugs and need application
/// knowledge; AsyncG supports them with queries over the built graph. The
/// case runner uses these for the Expect-Sync-Callback and
/// Broken-Promise-Chain Table-I entries.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_DETECT_AGQUERIES_H
#define ASYNCG_DETECT_AGQUERIES_H

#include "ag/Graph.h"

#include <vector>

namespace asyncg {
namespace detect {

/// §VI-B.1: expecting callbacks to run synchronously. For a registration,
/// returns how many ticks later its first execution happened (-1 when it
/// never executed). A caller that reads callback results in the
/// registration tick is broken whenever this is nonzero.
int ticksUntilExecution(const ag::AsyncGraph &G, jsrt::ScheduleId Sched);

/// Reports an Expect-Sync-Callback warning for \p Sched if its callback
/// did not (or could not) run in the registration tick. Returns true if a
/// warning was added.
bool reportExpectSyncCallback(ag::AsyncGraph &G, jsrt::ScheduleId Sched);

/// §VI-B.2: broken promise chains / unnecessary promises — candidates are
/// promises created during a then/catch reaction body but neither returned
/// (no "link" edge) nor reacted to. Returns the OB nodes.
std::vector<ag::NodeId> findDroppedChainPromises(const ag::AsyncGraph &G);

/// Reports BrokenPromiseChain warnings for all dropped-chain candidates
/// and for reactions whose missing return broke the chain (the
/// SO-50996870 shape). Returns the number of warnings added.
unsigned reportBrokenPromiseChains(ag::AsyncGraph &G);

} // namespace detect
} // namespace asyncg

#endif // ASYNCG_DETECT_AGQUERIES_H
