//===- EmitterDetectors.cpp - Emitter-bug detectors (§VI-A.2) ----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "detect/Detectors.h"

#include "support/Format.h"

#include <algorithm>

using namespace asyncg;
using namespace asyncg::detect;
using namespace asyncg::ag;
using namespace asyncg::jsrt;

namespace {

/// APIs that register a listener on an emitter (including the node-layer
/// server constructors, whose callback is a listener on an internal
/// emitter, as in the paper's Fig. 3).
bool isListenerApi(ApiKind K) {
  return isEmitterRegistrationApi(K) || K == ApiKind::NetCreateServer ||
         K == ApiKind::HttpCreateServer;
}

} // namespace

//===----------------------------------------------------------------------===//
// Dead listeners (§VI-A.2a)
//===----------------------------------------------------------------------===//

namespace {

std::string deadListenerMessage(const AgNode &N) {
  return strFormat("listener for event '%s' never executed (dead "
                   "listener): the emitter never emitted it while the "
                   "listener was registered",
                   N.Event.c_str());
}

} // namespace

void DeadListenerDetector::onNodeAdded(AsyncGBuilder &B, NodeId N) {
  const AgNode &Node = B.graph().node(N);
  if (Node.Kind == NodeKind::CR && isListenerApi(Node.Api) && !Node.Internal)
    PendingSet[N] = 1;
}

void DeadListenerDetector::onEdgeAdded(AsyncGBuilder &B, const AgEdge &E) {
  // A binding edge CE -> CR means the registration executed (the builder
  // adds one on every path that bumps ExecCount).
  if (E.Kind == EdgeKind::Binding && !PendingSet.empty())
    PendingSet.erase(E.To);
  (void)B;
}

void DeadListenerDetector::onRegistrationRemoved(AsyncGBuilder &B,
                                                 NodeId Cr) {
  // Explicitly removed listeners are not dead listeners.
  (void)B;
  PendingSet.erase(Cr);
}

void DeadListenerDetector::onRegistrationReleased(AsyncGBuilder &B,
                                                  NodeId Cr) {
  // The emitter died with the listener never having fired: the verdict is
  // definitive, so the warning sticks across end-of-run recomputations.
  if (!PendingSet.contains(Cr))
    return;
  PendingSet.erase(Cr);
  warn(B, BugCategory::DeadListener, Cr,
       deadListenerMessage(B.graph().node(Cr)), /*Sticky=*/true);
}

void DeadListenerDetector::onEnd(AsyncGBuilder &B) {
  AsyncGraph &G = B.graph();
  G.clearWarnings({BugCategory::DeadListener});
  // O(pending), not a graph sweep. Sorted so repeated runs and the
  // retire-on/off modes report in the same order.
  std::vector<NodeId> Ids;
  Ids.reserve(PendingSet.size());
  for (const auto &KV : PendingSet)
    Ids.push_back(KV.first);
  std::sort(Ids.begin(), Ids.end());
  for (NodeId N : Ids)
    warn(B, BugCategory::DeadListener, N,
         deadListenerMessage(G.node(N)));
}

//===----------------------------------------------------------------------===//
// Dead emits (§VI-A.2b)
//===----------------------------------------------------------------------===//

void DeadEmitDetector::onNodeAdded(AsyncGBuilder &B, NodeId N) {
  const AgNode &Node = B.graph().node(N);
  if (Node.Kind != NodeKind::CT || Node.Api != ApiKind::EmitterEmit)
    return;
  if (Node.HadEffect || Node.Internal)
    return;
  warn(B, BugCategory::DeadEmit, N,
       strFormat("event '%s' emitted with no registered listener (dead "
                 "emit)",
                 Node.Event.c_str()));
}

//===----------------------------------------------------------------------===//
// Invalid listener removal (§VI-A.2c)
//===----------------------------------------------------------------------===//

void InvalidRemovalDetector::onApiEvent(AsyncGBuilder &B,
                                        const instr::ApiCallEvent &E) {
  if (E.Api != ApiKind::EmitterRemoveListener || E.TriggerHadEffect)
    return;
  std::string Fn =
      E.Callbacks.empty() ? "<function>" : E.Callbacks.front().name();
  warnAt(B, BugCategory::InvalidListenerRemoval, E.Loc,
         strFormat("removeListener('%s', %s) removed nothing: the passed "
                   "function is not a registered listener (a fresh "
                   "function object only looks the same)",
                   E.EventName.c_str(), Fn.c_str()));
}

//===----------------------------------------------------------------------===//
// Duplicate listeners (§VI-A.2d)
//===----------------------------------------------------------------------===//

void DuplicateListenerDetector::onNodeAdded(AsyncGBuilder &B, NodeId N) {
  const AgNode &Node = B.graph().node(N);

  // A once-listener firing leaves the live set.
  if (Node.Kind == NodeKind::CE && Node.Api == ApiKind::EmitterOnce) {
    auto It = Live.find(Key{Node.Obj, Node.Event, Node.Func});
    if (It != Live.end() && It->second > 0)
      --It->second;
    return;
  }

  if (Node.Kind != NodeKind::CR || !isListenerApi(Node.Api))
    return;
  Key K{Node.Obj, Node.Event, Node.Func};
  unsigned &Count = Live[K];
  if (Count >= 1 && !Node.Internal)
    warn(B, BugCategory::DuplicateListener, N,
         strFormat("the same function is already registered as a listener "
                   "for event '%s' on this emitter",
                   Node.Event.c_str()));
  ++Count;
}

void DuplicateListenerDetector::onApiEvent(AsyncGBuilder &B,
                                           const instr::ApiCallEvent &E) {
  (void)B;
  if (E.Api == ApiKind::EmitterRemoveListener && E.TriggerHadEffect &&
      !E.Callbacks.empty()) {
    auto It = Live.find(Key{E.BoundObj, E.EventName,
                            E.Callbacks.front().id()});
    if (It != Live.end() && It->second > 0)
      --It->second;
    return;
  }
  if (E.Api == ApiKind::EmitterRemoveAll) {
    for (auto &[K, Count] : Live)
      if (std::get<0>(K) == E.BoundObj && std::get<1>(K) == E.EventName)
        Count = 0;
  }
}

void DuplicateListenerDetector::onObjectReleased(AsyncGBuilder &B, NodeId Ob,
                                                 ObjectId Obj,
                                                 bool IsPromise) {
  (void)B;
  (void)Ob;
  if (IsPromise)
    return;
  for (auto It = Live.begin(); It != Live.end();)
    It = std::get<0>(It->first) == Obj ? Live.erase(It) : std::next(It);
}

//===----------------------------------------------------------------------===//
// Add listener within listener (§VI-A.2e)
//===----------------------------------------------------------------------===//

void AddListenerWithinListenerDetector::onNodeAdded(AsyncGBuilder &B,
                                                    NodeId N) {
  const AgNode &Node = B.graph().node(N);
  if (Node.Kind != NodeKind::CR || !isListenerApi(Node.Api) ||
      Node.Internal || Node.Obj == 0)
    return;
  for (NodeId CeId : B.activeCes()) {
    const AgNode &Ce = B.graph().node(CeId);
    if (Ce.Kind == NodeKind::CE && isListenerApi(Ce.Api) &&
        Ce.Obj == Node.Obj) {
      warn(B, BugCategory::AddListenerWithinListener, N,
           strFormat("listener for '%s' registered inside another listener "
                     "('%s') of the same emitter: it is lost whenever the "
                     "outer listener does not run first",
                     Node.Event.c_str(), Ce.Event.c_str()));
      return;
    }
  }
}

//===----------------------------------------------------------------------===//
// Listener leak (extra: Node's MaxListenersExceededWarning heuristic)
//===----------------------------------------------------------------------===//

void ListenerLeakDetector::onNodeAdded(AsyncGBuilder &B, NodeId N) {
  const AgNode &Node = B.graph().node(N);

  if (Node.Kind == NodeKind::CE && Node.Api == ApiKind::EmitterOnce) {
    auto It = Live.find(Key{Node.Obj, Node.Event});
    if (It != Live.end() && It->second > 0)
      --It->second;
    return;
  }

  if (Node.Kind != NodeKind::CR || !isListenerApi(Node.Api) || Node.Obj == 0)
    return;
  unsigned &Count = Live[Key{Node.Obj, Node.Event}];
  ++Count;
  if (Count == Config.MaxListeners + 1)
    warn(B, BugCategory::ListenerLeak, N,
         strFormat("%u listeners registered for event '%s' on one emitter "
                   "(limit %u): possible subscription leak — are "
                   "listeners ever removed?",
                   Count, Node.Event.c_str(), Config.MaxListeners));
}

void ListenerLeakDetector::onApiEvent(AsyncGBuilder &B,
                                      const instr::ApiCallEvent &E) {
  (void)B;
  if (E.Api == ApiKind::EmitterRemoveListener && E.TriggerHadEffect) {
    auto It = Live.find(Key{E.BoundObj, E.EventName});
    if (It != Live.end() && It->second > 0)
      --It->second;
    return;
  }
  if (E.Api == ApiKind::EmitterRemoveAll)
    Live.erase(Key{E.BoundObj, E.EventName});
}

void ListenerLeakDetector::onObjectReleased(AsyncGBuilder &B, NodeId Ob,
                                            ObjectId Obj, bool IsPromise) {
  (void)B;
  (void)Ob;
  if (IsPromise)
    return;
  for (auto It = Live.begin(); It != Live.end();)
    It = It->first.first == Obj ? Live.erase(It) : std::next(It);
}
