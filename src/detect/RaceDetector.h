//===- RaceDetector.h - data-flow races over the Async Graph ----*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §IX ongoing-research extension: "extending AsyncG with data
/// flow analysis to automatically detect race conditions caused by
/// non-deterministic event ordering in Node.js".
///
/// The detector combines two sources:
///  - property-access events (Runtime::getProperty/setProperty), giving
///    the data flow;
///  - the Async Graph, giving the causal (happens-before) structure:
///    access A happens-before access B when A's callback execution reaches
///    B's through causal/happens-in scheduling edges.
///
/// A write and another access to the same (object, property) from two
/// different ticks with no causal path between them form a race candidate;
/// it is reported when at least one of the two callbacks was dispatched by
/// an externally scheduled event (I/O, timers, close) — those are the
/// orderings the OS does not guarantee. Purely micro-task interleavings
/// are deterministic and stay quiet (the Mixing-Similar-APIs detector
/// covers ordering confusion there).
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_DETECT_RACEDETECTOR_H
#define ASYNCG_DETECT_RACEDETECTOR_H

#include "ag/Builder.h"
#include "instr/Hooks.h"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace asyncg {
namespace detect {

/// The race analysis. Attach to the runtime hooks *in addition to* the
/// AsyncGBuilder it reads the causal structure from:
/// \code
///   ag::AsyncGBuilder Builder;
///   detect::RaceDetector Races(Builder);
///   RT.hooks().attach(&Builder);  // must come first (graph before races)
///   RT.hooks().attach(&Races);
/// \endcode
class RaceDetector : public instr::AnalysisBase {
public:
  explicit RaceDetector(ag::AsyncGBuilder &Builder) : Builder(Builder) {}

  const char *analysisName() const override { return "race-detector"; }

  void onPropertyAccess(const instr::PropertyAccessEvent &E) override;
  void onLoopEnd(const instr::LoopEndEvent &E) override;

  /// The race warnings found at the last loop end.
  const std::vector<ag::Warning> &warnings() const { return Warnings; }

  /// Number of recorded accesses (diagnostics).
  size_t accessCount() const { return Accesses.size(); }

private:
  struct Access {
    uintptr_t Obj = 0;
    std::string Key;
    bool IsWrite = false;
    SourceLocation Loc;
    /// The CE the access happened in (InvalidNode outside callbacks).
    ag::NodeId Ce = ag::InvalidNode;
    uint32_t Tick = 0;
    jsrt::PhaseKind Phase = jsrt::PhaseKind::Main;
  };

  /// True when a causal/happens-in path leads from \p From to \p To.
  bool reaches(ag::NodeId From, ag::NodeId To) const;

  /// True for phases whose dispatch order depends on external timing.
  static bool isExternalPhase(jsrt::PhaseKind P) {
    return P == jsrt::PhaseKind::Io || P == jsrt::PhaseKind::Timers ||
           P == jsrt::PhaseKind::Close;
  }

  ag::AsyncGBuilder &Builder;
  std::vector<Access> Accesses;
  std::vector<ag::Warning> Warnings;
  std::set<std::string> Reported;
};

} // namespace detect
} // namespace asyncg

#endif // ASYNCG_DETECT_RACEDETECTOR_H
