//===- PromiseDetectors.cpp - Promise-bug detectors (§VI-A.3) and suite ------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "detect/Detectors.h"

#include "support/Format.h"

#include <algorithm>

using namespace asyncg;
using namespace asyncg::detect;
using namespace asyncg::ag;
using namespace asyncg::jsrt;

namespace {

/// APIs that attach a reaction to a promise.
bool isReactionApi(ApiKind K) {
  return K == ApiKind::PromiseThen || K == ApiKind::PromiseCatch ||
         K == ApiKind::PromiseFinally || K == ApiKind::Await;
}

/// Relation labels that derive one promise from another through a
/// reaction (mirrors AsyncGraph::derivedPromises; combinator inputs and
/// adoption links are not derivations).
bool isDerivationLabel(Symbol L) {
  static const Symbol Then("then"), Catch("catch"), Finally("finally");
  return L == Then || L == Catch || L == Finally;
}

} // namespace

void PromiseDetector::onNodeAdded(AsyncGBuilder &B, NodeId N) {
  const AgNode &Node = B.graph().node(N);

  // A new promise: start its state record. Internal promises never warn
  // and are not tracked (their derivation edges are still counted on the
  // non-internal endpoints below).
  if (Node.Kind == NodeKind::OB && Node.IsPromise) {
    if (!Node.Internal) {
      PromState &P = Proms[Node.Obj];
      P = PromState();
      P.Ob = N;
    }
    return;
  }

  // Settle trigger actions.
  if (Node.Kind == NodeKind::CT && (Node.Api == ApiKind::PromiseResolve ||
                                    Node.Api == ApiKind::PromiseReject)) {
    if (Node.HadEffect) {
      if (PromState *P = Proms.find(Node.Obj))
        P->Settled = true;
      return;
    }
    if (!Node.Internal)
      warn(B, BugCategory::DoubleSettle, N,
           strFormat("%s on an already-settled promise has no effect "
                     "(double resolve or reject)",
                     apiKindName(Node.Api)));
    return;
  }

  if (Node.Kind != NodeKind::CR)
    return;

  // Reaction registrations (user-level and internal adoption/combinator
  // reactions; the latter also count — a promise consumed by a combinator
  // or adopted into a chain is handled).
  if (Node.Obj != 0 &&
      (isReactionApi(Node.Api) || Node.Api == ApiKind::Internal)) {
    if (PromState *P = Proms.find(Node.Obj)) {
      P->Reacted = true;
      if (Node.HasRejectHandler)
        P->RejectHandled = true;
    }
  }

  // The newest CR deriving a promise decides whether its chain ends with
  // a reject reaction (last writer wins, as the old full scan's node-order
  // map did).
  if (Node.DerivedObj != 0)
    if (PromState *P = Proms.find(Node.DerivedObj))
      P->DerivingCrHasReject = Node.HasRejectHandler;
}

void PromiseDetector::onEdgeAdded(AsyncGBuilder &B, const AgEdge &E) {
  // Promise chain derivations: a then/catch/finally relation edge between
  // two promise OBs (the builder also labels OB->CR edges with API names,
  // so both endpoint kinds must be checked).
  if (E.Kind != EdgeKind::Relation || !isDerivationLabel(E.Label))
    return;
  const AgNode &From = B.graph().node(E.From);
  const AgNode &To = B.graph().node(E.To);
  if (From.Kind != NodeKind::OB || !From.IsPromise ||
      To.Kind != NodeKind::OB || !To.IsPromise)
    return;
  static const Symbol Then("then");
  if (PromState *P = Proms.find(From.Obj)) {
    ++P->DerivedCount;
    if (E.Label == Then)
      ++P->DerivedThenCount;
  }
  if (PromState *P = Proms.find(To.Obj))
    P->HasParent = true;
}

void PromiseDetector::judge(AsyncGBuilder &B, const PromState &P,
                            bool Sticky) {
  const AgNode &N = B.graph().node(P.Ob);
  bool IsRoot = !P.HasParent;

  // §VI-A.3a: never settled during this execution.
  if (!P.Settled && IsRoot)
    warn(B, BugCategory::DeadPromise, P.Ob,
         "promise was never resolved or rejected during this execution "
         "(dead promise)",
         Sticky);

  // §VI-A.3b: settled but nothing ever reacted (then/catch/await/...).
  if (P.Settled && IsRoot && !P.Reacted)
    warn(B, BugCategory::MissingReaction, P.Ob,
         "promise settled but has no reaction (no then/catch/await uses "
         "its result)",
         Sticky);

  // §VI-A.3c: the chain ending here has no rejection handler. Reported
  // even when no exception was actually thrown (the paper checks chain
  // structure, not executions).
  if (P.DerivedCount == 0 && !P.RejectHandled && !IsRoot &&
      !P.DerivingCrHasReject)
    warn(B, BugCategory::MissingExceptionalReaction, P.Ob,
         "promise chain does not end with a reject reaction: an "
         "exception anywhere in the chain would be silently dropped",
         Sticky);

  // §VI-A.3d: a reaction returned undefined but the chain continues with
  // a value-consuming then (a trailing catch does not use the value).
  if (N.ReactionReturnedUndefined && P.DerivedThenCount != 0)
    warn(B, BugCategory::MissingReturnInThen, P.Ob,
         "the reaction producing this promise returned undefined but "
         "the chain continues: the next then receives undefined "
         "(missing return)",
         Sticky);
}

void PromiseDetector::onObjectReleased(AsyncGBuilder &B, NodeId Ob,
                                       ObjectId Obj, bool IsPromise) {
  (void)Ob;
  if (!IsPromise)
    return;
  PromState *P = Proms.find(Obj);
  if (!P)
    return;
  // A released promise's fate is final: nothing can settle it, react to
  // it, or derive from it any more. Issue the definitive verdicts and
  // drop the record.
  judge(B, *P, /*Sticky=*/true);
  Proms.erase(Obj);
}

void PromiseDetector::onEnd(AsyncGBuilder &B) {
  AsyncGraph &G = B.graph();
  G.clearWarnings({BugCategory::DeadPromise, BugCategory::MissingReaction,
                   BugCategory::MissingExceptionalReaction,
                   BugCategory::MissingReturnInThen});

  // O(live promises), not a graph sweep; node-id order matches the old
  // full scan and keeps retire-on/off reports identical.
  EndScratch.clear();
  for (const auto &KV : Proms)
    EndScratch.push_back(&KV.second);
  std::sort(EndScratch.begin(), EndScratch.end(),
            [](const PromState *A, const PromState *B) {
              return A->Ob < B->Ob;
            });
  for (const PromState *P : EndScratch)
    judge(B, *P, /*Sticky=*/false);
}

//===----------------------------------------------------------------------===//
// DetectorSuite
//===----------------------------------------------------------------------===//

DetectorSuite::DetectorSuite(DetectorConfig Config)
    : Config(Config), Recursive(this->Config), Mixed(this->Config),
      TimeoutOrder(this->Config), DeadListener(this->Config),
      DeadEmit(this->Config), InvalidRemoval(this->Config),
      Duplicate(this->Config), AddWithin(this->Config),
      LeakDetector(this->Config), Promises(this->Config) {
  Active = {&Recursive,      &Mixed,        &TimeoutOrder,
            &DeadListener,   &DeadEmit,     &InvalidRemoval,
            &Duplicate,      &AddWithin,    &LeakDetector,
            &Promises};
}

void DetectorSuite::disable(GraphObserver *D) {
  Active.erase(std::remove(Active.begin(), Active.end(), D), Active.end());
}

void DetectorSuite::onTickStart(AsyncGBuilder &B, const AgTick &T) {
  for (GraphObserver *D : Active)
    D->onTickStart(B, T);
}

void DetectorSuite::onNodeAdded(AsyncGBuilder &B, NodeId N) {
  for (GraphObserver *D : Active)
    D->onNodeAdded(B, N);
}

void DetectorSuite::onEdgeAdded(AsyncGBuilder &B, const AgEdge &E) {
  for (GraphObserver *D : Active)
    D->onEdgeAdded(B, E);
}

void DetectorSuite::onApiEvent(AsyncGBuilder &B,
                               const instr::ApiCallEvent &E) {
  for (GraphObserver *D : Active)
    D->onApiEvent(B, E);
}

void DetectorSuite::onRegistrationRemoved(AsyncGBuilder &B, NodeId Cr) {
  for (GraphObserver *D : Active)
    D->onRegistrationRemoved(B, Cr);
}

void DetectorSuite::onRegistrationReleased(AsyncGBuilder &B, NodeId Cr) {
  for (GraphObserver *D : Active)
    D->onRegistrationReleased(B, Cr);
}

void DetectorSuite::onObjectReleased(AsyncGBuilder &B, NodeId Ob,
                                     ObjectId Obj, bool IsPromise) {
  for (GraphObserver *D : Active)
    D->onObjectReleased(B, Ob, Obj, IsPromise);
}

void DetectorSuite::onRegionRetire(AsyncGBuilder &B, uint32_t TickIndex) {
  for (GraphObserver *D : Active)
    D->onRegionRetire(B, TickIndex);
}

void DetectorSuite::onEnd(AsyncGBuilder &B) {
  for (GraphObserver *D : Active)
    D->onEnd(B);
}
