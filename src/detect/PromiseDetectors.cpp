//===- PromiseDetectors.cpp - Promise-bug detectors (§VI-A.3) and suite ------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "detect/Detectors.h"

#include "support/Format.h"

#include <algorithm>

using namespace asyncg;
using namespace asyncg::detect;
using namespace asyncg::ag;
using namespace asyncg::jsrt;

namespace {

/// APIs that attach a reaction to a promise.
bool isReactionApi(ApiKind K) {
  return K == ApiKind::PromiseThen || K == ApiKind::PromiseCatch ||
         K == ApiKind::PromiseFinally || K == ApiKind::Await;
}

} // namespace

void PromiseDetector::onNodeAdded(AsyncGBuilder &B, NodeId N) {
  const AgNode &Node = B.graph().node(N);

  // Settle trigger actions.
  if (Node.Kind == NodeKind::CT && (Node.Api == ApiKind::PromiseResolve ||
                                    Node.Api == ApiKind::PromiseReject)) {
    if (Node.HadEffect) {
      Settled.insert(Node.Obj);
      return;
    }
    if (!Node.Internal)
      warn(B, BugCategory::DoubleSettle, N,
           strFormat("%s on an already-settled promise has no effect "
                     "(double resolve or reject)",
                     apiKindName(Node.Api)));
    return;
  }

  // Reaction registrations (user-level and internal adoption/combinator
  // reactions; the latter also count — a promise consumed by a combinator
  // or adopted into a chain is handled).
  if (Node.Kind == NodeKind::CR && Node.Obj != 0 &&
      (isReactionApi(Node.Api) || Node.Api == ApiKind::Internal)) {
    Reacted.insert(Node.Obj);
    if (Node.HasRejectHandler)
      RejectHandled.insert(Node.Obj);
  }
}

void PromiseDetector::onEnd(AsyncGBuilder &B) {
  AsyncGraph &G = B.graph();
  G.clearWarnings({BugCategory::DeadPromise, BugCategory::MissingReaction,
                   BugCategory::MissingExceptionalReaction,
                   BugCategory::MissingReturnInThen});

  // CRs indexed by the promise they derive, to check whether a chain's
  // last reaction includes a rejection handler.
  std::map<ObjectId, const AgNode *> DerivingCr;
  for (const AgNode &N : G.nodes())
    if (N.Kind == NodeKind::CR && N.DerivedObj != 0)
      DerivingCr[N.DerivedObj] = &N;

  for (const AgNode &N : G.nodes()) {
    if (N.Kind != NodeKind::OB || !N.IsPromise || N.Internal)
      continue;

    bool IsSettled = Settled.count(N.Obj) != 0;
    bool IsRoot = G.parentPromise(N.Id) == InvalidNode;
    std::vector<NodeId> Derived = G.derivedPromises(N.Id);

    // §VI-A.3a: never settled during this execution.
    if (!IsSettled && IsRoot)
      warn(B, BugCategory::DeadPromise, N.Id,
           "promise was never resolved or rejected during this execution "
           "(dead promise)");

    // §VI-A.3b: settled but nothing ever reacted (then/catch/await/...).
    if (IsSettled && IsRoot && !Reacted.count(N.Obj))
      warn(B, BugCategory::MissingReaction, N.Id,
           "promise settled but has no reaction (no then/catch/await uses "
           "its result)");

    // §VI-A.3c: the chain ending here has no rejection handler. Reported
    // even when no exception was actually thrown (the paper checks chain
    // structure, not executions).
    if (Derived.empty() && !RejectHandled.count(N.Obj) && !IsRoot) {
      auto It = DerivingCr.find(N.Obj);
      bool EndsWithRejectReaction =
          It != DerivingCr.end() && It->second->HasRejectHandler;
      if (!EndsWithRejectReaction)
        warn(B, BugCategory::MissingExceptionalReaction, N.Id,
             "promise chain does not end with a reject reaction: an "
             "exception anywhere in the chain would be silently dropped");
    }

    // §VI-A.3d: a reaction returned undefined but the chain continues with
    // a value-consuming then (a trailing catch does not use the value).
    if (N.ReactionReturnedUndefined &&
        !G.derivedPromises(N.Id, "then").empty())
      warn(B, BugCategory::MissingReturnInThen, N.Id,
           "the reaction producing this promise returned undefined but "
           "the chain continues: the next then receives undefined "
           "(missing return)");
  }
}

//===----------------------------------------------------------------------===//
// DetectorSuite
//===----------------------------------------------------------------------===//

DetectorSuite::DetectorSuite(DetectorConfig Config)
    : Config(Config), Recursive(this->Config), Mixed(this->Config),
      TimeoutOrder(this->Config), DeadListener(this->Config),
      DeadEmit(this->Config), InvalidRemoval(this->Config),
      Duplicate(this->Config), AddWithin(this->Config),
      LeakDetector(this->Config), Promises(this->Config) {
  Active = {&Recursive,      &Mixed,        &TimeoutOrder,
            &DeadListener,   &DeadEmit,     &InvalidRemoval,
            &Duplicate,      &AddWithin,    &LeakDetector,
            &Promises};
}

void DetectorSuite::disable(GraphObserver *D) {
  Active.erase(std::remove(Active.begin(), Active.end(), D), Active.end());
}

void DetectorSuite::onTickStart(AsyncGBuilder &B, const AgTick &T) {
  for (GraphObserver *D : Active)
    D->onTickStart(B, T);
}

void DetectorSuite::onNodeAdded(AsyncGBuilder &B, NodeId N) {
  for (GraphObserver *D : Active)
    D->onNodeAdded(B, N);
}

void DetectorSuite::onEdgeAdded(AsyncGBuilder &B, const AgEdge &E) {
  for (GraphObserver *D : Active)
    D->onEdgeAdded(B, E);
}

void DetectorSuite::onApiEvent(AsyncGBuilder &B,
                               const instr::ApiCallEvent &E) {
  for (GraphObserver *D : Active)
    D->onApiEvent(B, E);
}

void DetectorSuite::onEnd(AsyncGBuilder &B) {
  for (GraphObserver *D : Active)
    D->onEnd(B);
}
