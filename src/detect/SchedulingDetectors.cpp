//===- SchedulingDetectors.cpp - Scheduling-bug detectors (§VI-A.1) ----------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "detect/Detectors.h"

#include "support/Format.h"

using namespace asyncg;
using namespace asyncg::detect;
using namespace asyncg::ag;
using namespace asyncg::jsrt;

void DetectorBase::warn(AsyncGBuilder &B, BugCategory Cat, NodeId Node,
                        std::string Message, bool Sticky) {
  const AgNode &N = B.graph().node(Node);
  Warning W;
  W.Category = Cat;
  W.Message = std::move(Message);
  W.Loc = N.Loc;
  W.Node = Node;
  W.Tick = N.Tick;
  W.Sticky = Sticky;
  B.graph().addWarning(std::move(W));
}

void DetectorBase::warnAt(AsyncGBuilder &B, BugCategory Cat,
                          SourceLocation Loc, std::string Message) {
  Warning W;
  W.Category = Cat;
  W.Message = std::move(Message);
  W.Loc = std::move(Loc);
  W.Node = InvalidNode;
  W.Tick = B.currentTickIndex();
  B.graph().addWarning(std::move(W));
}

//===----------------------------------------------------------------------===//
// Recursive micro-tasks (§VI-A.1a)
//===----------------------------------------------------------------------===//

void RecursiveMicrotaskDetector::onNodeAdded(AsyncGBuilder &B, NodeId N) {
  const AgNode &Node = B.graph().node(N);
  if (Node.Kind != NodeKind::CR)
    return;
  if (Node.Api != ApiKind::NextTick && Node.Api != ApiKind::PromiseThen)
    return;
  if (!isMicrotaskPhase(B.currentTickPhase()))
    return;
  NodeId Ce = B.currentCe();
  if (Ce == InvalidNode)
    return;
  const AgNode &Exec = B.graph().node(Ce);
  if (Exec.Func == 0 || Exec.Func != Node.Func)
    return;
  unsigned Count = ++Streak[Node.Func];
  if (Count < Config.RecursiveMicrotaskThreshold)
    return;
  warn(B, BugCategory::RecursiveMicrotask, N,
       strFormat("recursive %s re-schedules the running callback; the "
                 "micro-task queue starves all other phases",
                 apiKindName(Node.Api)));
}

//===----------------------------------------------------------------------===//
// Mixing similar APIs (§VI-A.1b)
//===----------------------------------------------------------------------===//

namespace {

/// The deferral family of a registration, or -1.
int deferralFamily(const AgNode &N, double ZeroTimeoutMs) {
  switch (N.Api) {
  case ApiKind::NextTick:
    return 0;
  case ApiKind::SetTimeout:
    return N.TimeoutMs <= ZeroTimeoutMs ? 1 : -1;
  case ApiKind::SetImmediate:
    return 2;
  default:
    return -1;
  }
}

const char *familyName(int F) {
  switch (F) {
  case 0:
    return "process.nextTick";
  case 1:
    return "setTimeout(0)";
  case 2:
    return "setImmediate";
  }
  return "?";
}

} // namespace

void MixedSimilarApisDetector::onTickStart(AsyncGBuilder &B,
                                           const AgTick &T) {
  (void)B;
  (void)T;
  SeenFamilies.clear();
}

void MixedSimilarApisDetector::onNodeAdded(AsyncGBuilder &B, NodeId N) {
  const AgNode &Node = B.graph().node(N);
  if (Node.Kind != NodeKind::CR || Node.Internal)
    return;
  int F = deferralFamily(Node, Config.ZeroTimeoutMs);
  if (F < 0)
    return;
  for (const auto &[Other, FirstCr] : SeenFamilies) {
    if (Other == F)
      continue;
    warn(B, BugCategory::MixedSimilarApis, N,
         strFormat("%s mixed with %s in the same tick: their callbacks "
                   "execute in different event-loop phases, not in "
                   "registration order",
                   familyName(F), familyName(Other)));
    warn(B, BugCategory::MixedSimilarApis, FirstCr,
         strFormat("%s mixed with %s in the same tick", familyName(Other),
                   familyName(F)));
    break;
  }
  SeenFamilies.emplace(F, N);
}

//===----------------------------------------------------------------------===//
// Unexpected timeout execution order (§VI-A.1c)
//===----------------------------------------------------------------------===//

void TimeoutOrderDetector::onRegionRetire(AsyncGBuilder &B,
                                          uint32_t TickIndex) {
  (void)B;
  // The tick's CR siblings are about to be reclaimed; no future CE can
  // bind to a registration from a retired (fully quiesced) region.
  ByTick.erase(TickIndex);
}

void TimeoutOrderDetector::onNodeAdded(AsyncGBuilder &B, NodeId N) {
  const AgNode &Node = B.graph().node(N);

  if (Node.Kind == NodeKind::CR && Node.Api == ApiKind::SetTimeout &&
      !Node.Internal) {
    ByTick[Node.Tick].push_back(N);
    return;
  }

  if (Node.Kind != NodeKind::CE || Node.Api != ApiKind::SetTimeout)
    return;
  NodeId Cr = B.graph().registrationNode(Node.Sched);
  if (Cr == InvalidNode)
    return;
  const AgNode &Reg = B.graph().node(Cr);
  auto It = ByTick.find(Reg.Tick);
  if (It == ByTick.end())
    return;
  for (NodeId Sibling : It->second) {
    if (Sibling == Cr)
      continue;
    const AgNode &S = B.graph().node(Sibling);
    if (S.TimeoutMs < Reg.TimeoutMs && S.ExecCount == 0 && !S.Removed) {
      warn(B, BugCategory::TimeoutExecutionOrder, N,
           strFormat("setTimeout(%s ms) executed before the same-tick "
                     "setTimeout(%s ms): expired timers run in "
                     "registration order, not timeout order",
                     formatNumber(Reg.TimeoutMs).c_str(),
                     formatNumber(S.TimeoutMs).c_str()));
      return;
    }
  }
}
