//===- WireCodec.cpp - Message <-> wire-byte codecs ----------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/WireCodec.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>

using namespace asyncg;
using namespace asyncg::sim;

WireCodec::~WireCodec() = default;

const char *asyncg::sim::httpReasonPhrase(int Status) {
  switch (Status) {
  case 200:
    return "OK";
  case 201:
    return "Created";
  case 204:
    return "No Content";
  case 400:
    return "Bad Request";
  case 401:
    return "Unauthorized";
  case 403:
    return "Forbidden";
  case 404:
    return "Not Found";
  case 500:
    return "Internal Server Error";
  case 503:
    return "Service Unavailable";
  default:
    return "OK";
  }
}

namespace {

//===----------------------------------------------------------------------===//
// Framed: 4-byte big-endian length prefix per message
//===----------------------------------------------------------------------===//

class FramedCodec final : public WireCodec {
public:
  bool ingest(const char *Data, size_t Len,
              std::vector<std::string> &Msgs) override {
    Buf.append(Data, Len);
    while (Buf.size() >= 4) {
      uint32_t N = (static_cast<uint8_t>(Buf[0]) << 24) |
                   (static_cast<uint8_t>(Buf[1]) << 16) |
                   (static_cast<uint8_t>(Buf[2]) << 8) |
                   static_cast<uint8_t>(Buf[3]);
      if (N > MaxFrame)
        return false;
      if (Buf.size() < 4 + static_cast<size_t>(N))
        break;
      Msgs.push_back(Buf.substr(4, N));
      Buf.erase(0, 4 + static_cast<size_t>(N));
    }
    return true;
  }

  void encode(const std::string &Msg, std::string &Out) override {
    uint32_t N = static_cast<uint32_t>(Msg.size());
    char Hdr[4] = {static_cast<char>(N >> 24), static_cast<char>(N >> 16),
                   static_cast<char>(N >> 8), static_cast<char>(N)};
    Out.append(Hdr, 4);
    Out.append(Msg);
  }

private:
  static constexpr uint32_t MaxFrame = 64u << 20;
  std::string Buf;
};

//===----------------------------------------------------------------------===//
// HTTP/1.1 helpers
//===----------------------------------------------------------------------===//

/// Incremental head (request/status line + headers) parser state shared by
/// both HTTP directions: accumulates until CRLFCRLF, then extracts the
/// start line and Content-Length.
struct HttpHead {
  std::string Line;
  size_t ContentLength = 0;
  bool KeepAlive = true;
};

/// Case-insensitive prefix match for header names.
bool headerIs(const std::string &Line, const char *Name) {
  size_t N = 0;
  while (Name[N]) {
    if (N >= Line.size() ||
        std::tolower(static_cast<unsigned char>(Line[N])) !=
            std::tolower(static_cast<unsigned char>(Name[N])))
      return false;
    ++N;
  }
  return true;
}

/// Parses a complete header block \p Head ("LINE\r\nHeader: v\r\n..."),
/// filling \p Out. Returns false when the start line is empty.
bool parseHead(const std::string &Head, HttpHead &Out) {
  size_t Eol = Head.find("\r\n");
  if (Eol == std::string::npos || Eol == 0)
    return false;
  Out.Line = Head.substr(0, Eol);
  Out.ContentLength = 0;
  Out.KeepAlive = true;
  size_t Pos = Eol + 2;
  while (Pos < Head.size()) {
    size_t Next = Head.find("\r\n", Pos);
    if (Next == std::string::npos)
      Next = Head.size();
    std::string Line = Head.substr(Pos, Next - Pos);
    if (headerIs(Line, "content-length:"))
      Out.ContentLength =
          static_cast<size_t>(std::strtoull(Line.c_str() + 15, nullptr, 10));
    else if (headerIs(Line, "connection:") &&
             Line.find("close") != std::string::npos)
      Out.KeepAlive = false;
    Pos = Next + 2;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// HTTP/1.1 server side: wire requests -> REQ/DAT/END, RES -> wire response
//===----------------------------------------------------------------------===//

class HttpServerCodec final : public WireCodec {
public:
  bool ingest(const char *Data, size_t Len,
              std::vector<std::string> &Msgs) override {
    Buf.append(Data, Len);
    for (;;) {
      if (!InBody) {
        size_t HdrEnd = Buf.find("\r\n\r\n");
        if (HdrEnd == std::string::npos)
          return Buf.size() <= MaxHead;
        if (!parseHead(Buf.substr(0, HdrEnd + 2), Head))
          return false;
        // Request line: METHOD SP PATH SP VERSION
        size_t Sp1 = Head.Line.find(' ');
        size_t Sp2 = Sp1 == std::string::npos
                         ? std::string::npos
                         : Head.Line.find(' ', Sp1 + 1);
        if (Sp1 == std::string::npos)
          return false;
        std::string Method = Head.Line.substr(0, Sp1);
        std::string Path = Sp2 == std::string::npos
                               ? Head.Line.substr(Sp1 + 1)
                               : Head.Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
        Buf.erase(0, HdrEnd + 4);
        Msgs.push_back("REQ " + Method + " " + Path);
        InBody = true;
      }
      if (Buf.size() < Head.ContentLength)
        return true;
      if (Head.ContentLength > 0) {
        Msgs.push_back("DAT " + Buf.substr(0, Head.ContentLength));
        Buf.erase(0, Head.ContentLength);
      }
      Msgs.push_back("END");
      InBody = false;
      if (Buf.empty())
        return true;
      // Keep-alive: loop for the next pipelined/queued request.
    }
  }

  void encode(const std::string &Msg, std::string &Out) override {
    // "RES <status> <body>" -> one complete HTTP/1.1 response.
    if (Msg.compare(0, 4, "RES ") != 0)
      return;
    size_t Sp = Msg.find(' ', 4);
    int Status;
    std::string Body;
    if (Sp == std::string::npos) {
      Status = std::atoi(Msg.c_str() + 4);
    } else {
      Status = std::atoi(Msg.substr(4, Sp - 4).c_str());
      Body = Msg.substr(Sp + 1);
    }
    Out += "HTTP/1.1 " + std::to_string(Status) + " " +
           httpReasonPhrase(Status) + "\r\n";
    Out += "Content-Type: text/plain\r\n";
    Out += "Content-Length: " + std::to_string(Body.size()) + "\r\n";
    Out += "Connection: keep-alive\r\n\r\n";
    Out += Body;
  }

private:
  static constexpr size_t MaxHead = 64u << 10;
  std::string Buf;
  HttpHead Head;
  bool InBody = false;
};

//===----------------------------------------------------------------------===//
// HTTP/1.1 client side: REQ/DAT/END -> wire request, wire response -> RES
//===----------------------------------------------------------------------===//

class HttpClientCodec final : public WireCodec {
public:
  bool ingest(const char *Data, size_t Len,
              std::vector<std::string> &Msgs) override {
    Buf.append(Data, Len);
    for (;;) {
      if (!InBody) {
        size_t HdrEnd = Buf.find("\r\n\r\n");
        if (HdrEnd == std::string::npos)
          return Buf.size() <= MaxHead;
        if (!parseHead(Buf.substr(0, HdrEnd + 2), Head))
          return false;
        // Status line: HTTP/1.1 SP CODE SP REASON
        size_t Sp1 = Head.Line.find(' ');
        if (Sp1 == std::string::npos)
          return false;
        Status = std::atoi(Head.Line.c_str() + Sp1 + 1);
        Buf.erase(0, HdrEnd + 4);
        InBody = true;
      }
      if (Buf.size() < Head.ContentLength)
        return true;
      std::string Body = Buf.substr(0, Head.ContentLength);
      Buf.erase(0, Head.ContentLength);
      // One discrete RES message per response, exactly what the sim
      // server's single frameResponse write delivers.
      Msgs.push_back("RES " + std::to_string(Status) +
                     (Body.empty() ? std::string() : " " + Body));
      InBody = false;
      if (Buf.empty())
        return true;
    }
  }

  void encode(const std::string &Msg, std::string &Out) override {
    // Buffer REQ/DAT until END completes the request, then emit one full
    // HTTP/1.1 request (the stream equivalent of the three sim writes).
    if (Msg.compare(0, 4, "REQ ") == 0) {
      std::string Rest = Msg.substr(4);
      size_t Sp = Rest.find(' ');
      Method = Sp == std::string::npos ? Rest : Rest.substr(0, Sp);
      Path = Sp == std::string::npos ? "/" : Rest.substr(Sp + 1);
      PendingBody.clear();
      HaveReq = true;
      return;
    }
    if (Msg.compare(0, 4, "DAT ") == 0) {
      PendingBody += Msg.substr(4);
      return;
    }
    if (Msg == "END" && HaveReq) {
      Out += Method + " " + Path + " HTTP/1.1\r\n";
      Out += "Host: 127.0.0.1\r\n";
      Out += "Content-Length: " + std::to_string(PendingBody.size()) + "\r\n";
      Out += "Connection: keep-alive\r\n\r\n";
      Out += PendingBody;
      PendingBody.clear();
      HaveReq = false;
    }
  }

private:
  static constexpr size_t MaxHead = 64u << 10;
  std::string Buf;
  HttpHead Head;
  int Status = 0;
  bool InBody = false;

  std::string Method, Path, PendingBody;
  bool HaveReq = false;
};

} // namespace

std::unique_ptr<WireCodec> asyncg::sim::makeWireCodec(WireFormat Format,
                                                      bool ServerRole) {
  if (Format == WireFormat::Framed)
    return std::make_unique<FramedCodec>();
  if (ServerRole)
    return std::make_unique<HttpServerCodec>();
  return std::make_unique<HttpClientCodec>();
}
