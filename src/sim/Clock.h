//===- Clock.h - Virtual time ------------------------------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual clock backing the simulated kernel and the jsrt timer phase.
/// All timing-related semantics (setTimeout ordering, I/O latencies) are
/// expressed in virtual microseconds so runs are fully deterministic; the
/// event loop advances the clock when it would otherwise block in poll.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_CLOCK_H
#define ASYNCG_SIM_CLOCK_H

#include <cassert>
#include <cstdint>

namespace asyncg {
namespace sim {

/// Virtual time in microseconds since simulation start.
using SimTime = uint64_t;

/// Sentinel meaning "no deadline".
constexpr SimTime NoDeadline = ~static_cast<SimTime>(0);

/// Converts milliseconds (the unit of the Node timer APIs) to SimTime.
constexpr SimTime millis(uint64_t Ms) { return Ms * 1000; }

/// A monotonically advancing virtual clock.
class Clock {
public:
  SimTime now() const { return Now; }

  /// Moves time forward to \p T. Never moves backwards.
  void advanceTo(SimTime T) {
    assert(T != NoDeadline && "advancing to the no-deadline sentinel");
    if (T > Now)
      Now = T;
  }

  /// Moves time forward by \p Delta microseconds.
  void advanceBy(SimTime Delta) { Now += Delta; }

private:
  SimTime Now = 0;
};

} // namespace sim
} // namespace asyncg

#endif // ASYNCG_SIM_CLOCK_H
