//===- WireCodec.h - Message <-> wire-byte codecs ----------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Codecs translating between the discrete protocol messages the node
/// layer exchanges (each sim::Socket::write is one message, each data
/// event delivers one message) and real socket byte streams, which
/// fragment and coalesce arbitrarily. The epoll backend runs one codec per
/// socket direction; the node layer and the Async Graph above it keep
/// seeing exactly the message protocol the simulated network delivers —
/// that equivalence is what makes warning parity across backends possible.
///
/// Two wire formats:
///  - Http1: node::Http's "REQ METHOD PATH" / "DAT chunk" / "END" //
///    "RES status body" messages map to genuine HTTP/1.1 keep-alive
///    requests and responses with Content-Length framing, so real
///    curl/wrk-style clients can talk to the server.
///  - Framed: 4-byte big-endian length prefix per message, binary-safe,
///    for raw net.Socket protocols that are not HTTP.
///
/// Codecs are pure incremental parsers (no I/O), unit-tested byte-by-byte.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_WIRECODEC_H
#define ASYNCG_SIM_WIRECODEC_H

#include "sim/Network.h"

#include <memory>
#include <string>
#include <vector>

namespace asyncg {
namespace sim {

/// Incremental two-way translator between protocol messages and wire
/// bytes. One instance per socket; stateful across calls.
class WireCodec {
public:
  virtual ~WireCodec();

  /// Feeds \p Len raw wire bytes; appends every completed protocol
  /// message to \p Msgs. Returns false on a malformed stream (the caller
  /// should reset the connection).
  virtual bool ingest(const char *Data, size_t Len,
                      std::vector<std::string> &Msgs) = 0;

  /// Translates one outgoing protocol message, appending wire bytes to
  /// \p Out. (HTTP codecs may buffer until the message set is complete,
  /// e.g. a client request flushes on "END".)
  virtual void encode(const std::string &Msg, std::string &Out) = 0;
};

/// Creates the codec for one endpoint. \p ServerRole: true for accepted
/// sockets (parse requests, emit responses), false for connecting sockets.
std::unique_ptr<WireCodec> makeWireCodec(WireFormat Format, bool ServerRole);

/// Maps an HTTP status code to its canonical reason phrase.
const char *httpReasonPhrase(int Status);

} // namespace sim
} // namespace asyncg

#endif // ASYNCG_SIM_WIRECODEC_H
