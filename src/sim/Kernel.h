//===- Kernel.h - Simulated OS async-completion kernel ----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated operating system: a table of pending asynchronous
/// operations, each with a virtual completion time and a completion action.
/// The jsrt event loop polls the kernel in its I/O phase; when the loop is
/// otherwise idle it advances the virtual clock to the next deadline, which
/// models libuv blocking in epoll with a timeout.
///
/// This is the paper's "external scheduling" source (§II-A): callbacks
/// scheduled by the OS which notifies the event loop with event data.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_KERNEL_H
#define ASYNCG_SIM_KERNEL_H

#include "sim/Clock.h"

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace asyncg {
namespace sim {

/// Identifies a pending kernel operation (for cancellation).
using OpId = uint64_t;

/// The simulated kernel. Completion actions run when the event loop polls;
/// they are plain C++ closures — the node-layer wraps them so that JS-level
/// callbacks are dispatched through the instrumented runtime.
class Kernel {
public:
  explicit Kernel(Clock &C) : TheClock(C) {}

  Clock &clock() { return TheClock; }
  SimTime now() const { return TheClock.now(); }

  /// Schedules \p Action to complete \p Delay microseconds from now.
  /// Returns an id usable with cancel().
  OpId submit(SimTime Delay, std::function<void()> Action);

  /// Cancels a pending operation. Returns false if it already completed.
  bool cancel(OpId Id);

  /// True if any operation is still pending.
  bool hasPending() const { return !Pending.empty(); }

  /// Number of pending operations.
  size_t pendingCount() const { return Pending.size(); }

  /// Earliest completion deadline, or NoDeadline when nothing is pending.
  SimTime nextDeadline() const;

  /// Removes and returns the actions of all operations due at or before the
  /// current virtual time, in deadline order (FIFO among equal deadlines).
  std::vector<std::function<void()>> takeDue();

  /// Total operations ever submitted (for statistics/tests).
  uint64_t submittedCount() const { return NextId; }

private:
  struct PendingOp {
    OpId Id;
    std::function<void()> Action;
  };

  Clock &TheClock;
  // Key: (deadline, sequence) so equal deadlines complete in submit order.
  std::map<std::pair<SimTime, OpId>, PendingOp> Pending;
  std::map<OpId, std::pair<SimTime, OpId>> ById;
  OpId NextId = 0;
};

} // namespace sim
} // namespace asyncg

#endif // ASYNCG_SIM_KERNEL_H
