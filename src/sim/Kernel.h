//===- Kernel.h - Simulated OS async-completion kernel ----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel interface the jsrt event loop pumps, plus its default
/// implementation: a *simulated* operating system holding a table of
/// pending asynchronous operations, each with a virtual completion time and
/// a completion action. The jsrt event loop polls the kernel in its I/O
/// phase; when the loop is otherwise idle it asks the kernel to wait for
/// the next deadline, which the simulated kernel satisfies by advancing the
/// virtual clock (modeling libuv blocking in epoll with a timeout) and the
/// real-traffic EpollKernel satisfies by actually blocking in epoll.
///
/// This is the paper's "external scheduling" source (§II-A): callbacks
/// scheduled by the OS which notifies the event loop with event data.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_KERNEL_H
#define ASYNCG_SIM_KERNEL_H

#include "sim/Clock.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace asyncg {
namespace sim {

/// Identifies a pending kernel operation (for cancellation).
using OpId = uint64_t;

/// Which kernel implementation a runtime pumps.
enum class KernelBackend {
  /// The deterministic simulated kernel in virtual time (default).
  Sim,
  /// Real non-blocking sockets behind Linux epoll + timerfd/eventfd, in
  /// wall-clock time. Only available on Linux builds.
  Epoll,
};

/// True when \p B can be constructed on this build (Sim always; Epoll only
/// on Linux).
bool kernelBackendSupported(KernelBackend B);

/// Stable lowercase name ("sim", "epoll") for flags and reports.
const char *kernelBackendName(KernelBackend B);

/// Parses a --kernel flag value. Returns false on unknown names.
bool parseKernelBackend(const std::string &Name, KernelBackend &Out);

/// The kernel. Completion actions run when the event loop polls; they are
/// plain C++ closures — the node-layer wraps them so that JS-level
/// callbacks are dispatched through the instrumented runtime.
///
/// This concrete class is the simulated implementation; the virtual methods
/// exist so EpollKernel can swap real OS readiness in behind the same
/// surface without the loop, the instrumentation, or the node layer
/// noticing (the StarlingMonkey host-apis pattern).
///
/// Cancellation contract (shared by all kernel implementations):
/// cancel(Id) returns true iff the kernel still held the operation, in
/// which case its action is guaranteed never to run. An operation that is
/// already *due* but not yet handed to the loop is still held, so it is
/// still cancellable. Once takeDue() has handed the operation to the loop,
/// cancel returns false — even if the loop has not executed the action yet
/// — because the kernel can no longer stop it. cancel of an unknown or
/// twice-cancelled id also returns false.
class Kernel {
public:
  explicit Kernel(Clock &C) : TheClock(C) {}
  virtual ~Kernel();

  Clock &clock() { return TheClock; }
  SimTime now() const { return TheClock.now(); }

  /// Schedules \p Action to complete \p Delay microseconds from now.
  /// Returns an id usable with cancel(). Loop-thread only.
  virtual OpId submit(SimTime Delay, std::function<void()> Action);

  /// Cancels a pending operation under the contract documented on the
  /// class: true iff the action will never run.
  virtual bool cancel(OpId Id);

  /// True if any operation or I/O source is still pending (can produce
  /// future completions; keeps the loop alive).
  virtual bool hasPending() const { return !Pending.empty(); }

  /// Number of pending operations.
  virtual size_t pendingCount() const { return Pending.size(); }

  /// Earliest completion deadline, or NoDeadline when nothing is pending
  /// with a known deadline. Real-time kernels report now() when readiness
  /// is already queued (the work is due immediately).
  virtual SimTime nextDeadline() const;

  /// Removes and returns the actions of all operations due at or before the
  /// current time, in deadline order (FIFO among equal deadlines).
  virtual std::vector<std::function<void()>> takeDue();

  /// The loop is idle until \p Next (the min of timer and kernel
  /// deadlines; NoDeadline when nothing has a deadline). Waits until work
  /// can be due: the simulated kernel advances the virtual clock to \p
  /// Next; the epoll kernel blocks in epoll_wait until \p Next or I/O
  /// readiness. Returns false when the kernel can never produce work again
  /// (no deadline and no I/O sources) — the loop proceeds to its exit path.
  virtual bool waitUntil(SimTime Next);

  /// True for kernels that track wall-clock time (the loop then stops
  /// adding virtual per-tick costs to the clock).
  virtual bool isRealTime() const { return false; }

  /// Total operations ever submitted (for statistics/tests).
  uint64_t submittedCount() const { return NextId; }

private:
  struct PendingOp {
    OpId Id;
    std::function<void()> Action;
  };

  Clock &TheClock;
  // Key: (deadline, sequence) so equal deadlines complete in submit order.
  std::map<std::pair<SimTime, OpId>, PendingOp> Pending;
  std::map<OpId, std::pair<SimTime, OpId>> ById;
  OpId NextId = 0;
};

} // namespace sim
} // namespace asyncg

#endif // ASYNCG_SIM_KERNEL_H
