//===- Kernel.h - Simulated OS async-completion kernel ----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel interface the jsrt event loop pumps, plus its default
/// implementation: a *simulated* operating system holding a table of
/// pending asynchronous operations, each with a virtual completion time and
/// a completion action. The jsrt event loop polls the kernel in its I/O
/// phase; when the loop is otherwise idle it asks the kernel to wait for
/// the next deadline, which the simulated kernel satisfies by advancing the
/// virtual clock (modeling libuv blocking in epoll with a timeout) and the
/// real-traffic EpollKernel satisfies by actually blocking in epoll.
///
/// This is the paper's "external scheduling" source (§II-A): callbacks
/// scheduled by the OS which notifies the event loop with event data.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_KERNEL_H
#define ASYNCG_SIM_KERNEL_H

#include "sim/Clock.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace asyncg {
namespace sim {

/// Identifies a pending kernel operation (for cancellation).
using OpId = uint64_t;

/// Which kernel implementation a runtime pumps.
enum class KernelBackend {
  /// The deterministic simulated kernel in virtual time (default).
  Sim,
  /// Real non-blocking sockets behind Linux epoll + timerfd/eventfd, in
  /// wall-clock time. Only available on Linux builds.
  Epoll,
  /// Completion-based I/O over a raw io_uring (no liburing dependency):
  /// batched SQE submission, multishot accept, timeout SQEs instead of a
  /// timerfd. Needs a Linux build *and* a kernel that permits io_uring —
  /// check kernelBackendAvailable() before constructing a runtime with it.
  Uring,
};

/// The kernel-syscall cost model: every syscall a real kernel backend (and
/// its network layer) issues on the serving path, broken down so the
/// io_uring batching win is measurable. The simulated kernel reports all
/// zeros — it never enters the OS.
///
/// The headline metric benches derive from this block is syscalls/request:
/// epoll pays one-plus syscalls per socket op (recv, send, accept4,
/// epoll_ctl churn, timerfd re-arms, epoll_wait sweeps), while io_uring
/// stages SQEs in user memory and flushes them in one io_uring_enter per
/// loop turn — completions are reaped straight from the mmap'd CQ ring at
/// zero syscall cost.
struct KernelStats {
  /// Total syscalls issued by the kernel + network backend.
  uint64_t Syscalls = 0;
  /// Blocking-capable waits: epoll_wait calls / io_uring_enter calls.
  uint64_t Enters = 0;
  /// io_uring only: SQEs pushed through enters.
  uint64_t SqesSubmitted = 0;
  /// io_uring only: enters that carried at least one SQE.
  uint64_t SubmitBatches = 0;
  /// io_uring only: largest single-flush SQE batch.
  uint64_t MaxSqeBatch = 0;
  /// Completion events handled: CQEs reaped (uring) / ready fd events
  /// (epoll).
  uint64_t Completions = 0;
  /// io_uring only: non-blocking sweeps served purely from the CQ ring
  /// without any syscall.
  uint64_t ZeroSyscallReaps = 0;
  /// Cross-thread eventfd wakes issued (submitExternal/wakeup/requestStop).
  uint64_t Wakeups = 0;

  void merge(const KernelStats &O) {
    Syscalls += O.Syscalls;
    Enters += O.Enters;
    SqesSubmitted += O.SqesSubmitted;
    SubmitBatches += O.SubmitBatches;
    MaxSqeBatch = MaxSqeBatch > O.MaxSqeBatch ? MaxSqeBatch : O.MaxSqeBatch;
    Completions += O.Completions;
    ZeroSyscallReaps += O.ZeroSyscallReaps;
    Wakeups += O.Wakeups;
  }
};

/// True when \p B can be constructed on this build (Sim always; Epoll and
/// Uring only on Linux). Build-time capability only — a Linux build on a
/// kernel that forbids io_uring still "supports" Uring but is not
/// *available*; see kernelBackendAvailable.
bool kernelBackendSupported(KernelBackend B);

/// Runtime capability probe: true when a runtime constructed with \p B on
/// this host will actually work. Sim is always available; Epoll needs a
/// Linux build; Uring additionally probes the running kernel
/// (io_uring_setup may be disabled by seccomp/sysctl in containers, and
/// old kernels lack the required ops). When \p Reason is non-null it
/// receives a one-line human-readable explanation either way.
bool kernelBackendAvailable(KernelBackend B, std::string *Reason = nullptr);

/// Resolves `--kernel auto`: the fastest available backend, probing
/// uring -> epoll -> sim. \p Reason (if non-null) receives the visible
/// reason string CLIs print: what was chosen and why the stronger
/// candidates were rejected.
KernelBackend resolveAutoKernelBackend(std::string *Reason = nullptr);

/// Comma-separated names of the backends available on this host (runtime
/// probe, not build support) — for error messages that enumerate choices.
std::string availableKernelBackendNames();

/// Stable lowercase name ("sim", "epoll", "uring") for flags and reports.
const char *kernelBackendName(KernelBackend B);

/// Parses a --kernel flag value. Returns false on unknown names ("auto" is
/// not a backend; CLIs resolve it via resolveAutoKernelBackend first).
bool parseKernelBackend(const std::string &Name, KernelBackend &Out);

/// The kernel. Completion actions run when the event loop polls; they are
/// plain C++ closures — the node-layer wraps them so that JS-level
/// callbacks are dispatched through the instrumented runtime.
///
/// This concrete class is the simulated implementation; the virtual methods
/// exist so EpollKernel can swap real OS readiness in behind the same
/// surface without the loop, the instrumentation, or the node layer
/// noticing (the StarlingMonkey host-apis pattern).
///
/// Cancellation contract (shared by all kernel implementations):
/// cancel(Id) returns true iff the kernel still held the operation, in
/// which case its action is guaranteed never to run. An operation that is
/// already *due* but not yet handed to the loop is still held, so it is
/// still cancellable. Once takeDue() has handed the operation to the loop,
/// cancel returns false — even if the loop has not executed the action yet
/// — because the kernel can no longer stop it. cancel of an unknown or
/// twice-cancelled id also returns false.
class Kernel {
public:
  explicit Kernel(Clock &C) : TheClock(C) {}
  virtual ~Kernel();

  Clock &clock() { return TheClock; }
  SimTime now() const { return TheClock.now(); }

  /// Schedules \p Action to complete \p Delay microseconds from now.
  /// Returns an id usable with cancel(). Loop-thread only.
  virtual OpId submit(SimTime Delay, std::function<void()> Action);

  /// Cancels a pending operation under the contract documented on the
  /// class: true iff the action will never run.
  virtual bool cancel(OpId Id);

  /// True if any operation or I/O source is still pending (can produce
  /// future completions; keeps the loop alive).
  virtual bool hasPending() const { return !Pending.empty(); }

  /// Number of pending operations.
  virtual size_t pendingCount() const { return Pending.size(); }

  /// Earliest completion deadline, or NoDeadline when nothing is pending
  /// with a known deadline. Real-time kernels report now() when readiness
  /// is already queued (the work is due immediately).
  virtual SimTime nextDeadline() const;

  /// Removes and returns the actions of all operations due at or before the
  /// current time, in deadline order (FIFO among equal deadlines).
  virtual std::vector<std::function<void()>> takeDue();

  /// The loop is idle until \p Next (the min of timer and kernel
  /// deadlines; NoDeadline when nothing has a deadline). Waits until work
  /// can be due: the simulated kernel advances the virtual clock to \p
  /// Next; the epoll kernel blocks in epoll_wait until \p Next or I/O
  /// readiness. Returns false when the kernel can never produce work again
  /// (no deadline and no I/O sources) — the loop proceeds to its exit path.
  virtual bool waitUntil(SimTime Next);

  /// True for kernels that track wall-clock time (the loop then stops
  /// adding virtual per-tick costs to the clock).
  virtual bool isRealTime() const { return false; }

  /// Total operations ever submitted (for statistics/tests).
  uint64_t submittedCount() const { return NextId; }

  /// Syscall cost-model counters. The simulated kernel issues no syscalls
  /// and returns zeros; real backends override.
  virtual KernelStats kernelStats() const { return KernelStats(); }

private:
  struct PendingOp {
    OpId Id;
    std::function<void()> Action;
  };

  Clock &TheClock;
  // Key: (deadline, sequence) so equal deadlines complete in submit order.
  std::map<std::pair<SimTime, OpId>, PendingOp> Pending;
  std::map<OpId, std::pair<SimTime, OpId>> ById;
  OpId NextId = 0;
};

} // namespace sim
} // namespace asyncg

#endif // ASYNCG_SIM_KERNEL_H
