//===- RealKernel.h - Shared base of the real-time kernel backends -*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machinery every wall-clock kernel backend (epoll, io_uring) shares,
/// factored out of EpollKernel when the uring backend arrived:
///
///  - the wall clock: SimTime is CLOCK_MONOTONIC microseconds since kernel
///    construction, pushed into the runtime's shared Clock by syncClock();
///  - the cross-thread surface: submitExternal() queues loop-thread work
///    from other threads, wakeup() nudges a blocked wait through an
///    eventfd, requestStop() asks the serving loop to drain and exit —
///    all sticky/thread-safe under the same contract EpollKernel
///    documented in PR 6;
///  - the kernel-syscall cost model (KernelStats): subclasses count every
///    syscall they issue so benches can report syscalls/request per
///    backend.
///
/// How the eventfd is *watched* is the subclass's business: EpollKernel
/// registers it with the epoll set, UringKernel keeps a multishot poll SQE
/// armed on it.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_REALKERNEL_H
#define ASYNCG_SIM_REALKERNEL_H

#ifdef __linux__

#include "sim/Kernel.h"

#include <atomic>
#include <chrono>
#include <mutex>

namespace asyncg {
namespace sim {

/// Base of EpollKernel and UringKernel. Loop-thread only, except
/// submitExternal(), wakeup(), requestStop(), and stopRequested().
class RealKernel : public Kernel {
public:
  ~RealKernel() override;

  bool isRealTime() const override { return true; }

  /// False when a required fd/ring could not be created at construction.
  virtual bool valid() const { return EvFd >= 0; }

  /// Queues \p Action to run on the loop thread's next I/O phase and wakes
  /// a blocked waitUntil(). Thread-safe — the only sanctioned way to talk
  /// to a serving loop from outside (e.g. cluster shutdown).
  void submitExternal(std::function<void()> Action);

  /// Wakes a blocked waitUntil() without queueing work (the cluster port
  /// uses this when posting cross-loop messages). Thread-safe.
  void wakeup();

  /// Asks the loop to stop serving: the next idle waitUntil() returns
  /// false, so Runtime::runLoop drains exactly as it does when a simulated
  /// run has no pending work left — no extra events, no extra ticks.
  /// Thread-safe; sticky for the kernel's lifetime.
  void requestStop();

  bool stopRequested() const {
    return StopRequested.load(std::memory_order_acquire);
  }

  /// Advances the shared clock to CLOCK_MONOTONIC microseconds elapsed
  /// since construction (never backwards).
  void syncClock();

  KernelStats kernelStats() const override;

  /// Counts \p N syscalls issued outside the kernel itself (the network
  /// backend's socket/recv/send/accept calls flow through here).
  void noteSyscalls(uint64_t N) { Stats.Syscalls += N; }

protected:
  explicit RealKernel(Clock &C);

  /// True when externally submitted work is queued (acquire).
  bool hasExternalWork() const {
    return HasExternal.load(std::memory_order_acquire);
  }

  /// Moves queued external actions onto the back of \p Due.
  void drainExternalInto(std::vector<std::function<void()>> &Due);

  /// Locked emptiness check for the idle-exit decision in waitUntil().
  bool externalQueueEmpty() const;

  int EvFd = -1;
  std::chrono::steady_clock::time_point Origin;

  /// Syscall cost model. Subclasses bump these on the loop thread; the
  /// cross-thread wake path counts through WakeupSyscalls below.
  KernelStats Stats;

private:
  mutable std::mutex ExternalMu;
  std::vector<std::function<void()>> External;
  std::atomic<bool> HasExternal{false};
  std::atomic<bool> StopRequested{false};
  /// wakeup() runs on foreign threads; folded into Stats on read.
  std::atomic<uint64_t> WakeupCalls{0};
};

} // namespace sim
} // namespace asyncg

#endif // __linux__
#endif // ASYNCG_SIM_REALKERNEL_H
