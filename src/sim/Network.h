//===- Network.h - Simulated TCP sockets and listeners ----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated TCP layer: listening ports, socket pairs, and message
/// delivery with configurable virtual latency through the kernel.
/// The node-layer net/http modules wrap these raw sockets in EventEmitter
/// objects; the workload driver connects from "outside" the JS world, the
/// way JMeter drives the AcmeAir server in the paper's evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_NETWORK_H
#define ASYNCG_SIM_NETWORK_H

#include "sim/Kernel.h"

#include <functional>
#include <map>
#include <memory>
#include <string>

namespace asyncg {
namespace sim {

class Network;

/// One endpoint of a simulated TCP connection. Data written here is
/// delivered to the peer endpoint's data handler after the network latency.
class Socket : public std::enable_shared_from_this<Socket> {
public:
  using DataHandler = std::function<void(const std::string &)>;
  using EventHandler = std::function<void()>;

  /// Installs the handler invoked when the peer sends data.
  void onData(DataHandler H) { Data = std::move(H); }
  /// Installs the handler invoked when the peer half-closes.
  void onEnd(EventHandler H) { End = std::move(H); }
  /// Installs the handler invoked when the connection is torn down.
  void onClose(EventHandler H) { Close = std::move(H); }

  /// Sends \p Bytes to the peer. Returns false after end()/destroy().
  bool write(const std::string &Bytes);

  /// Half-closes: the peer sees an end event after the latency.
  void end();

  /// Tears the connection down; both endpoints see a close event.
  void destroy();

  /// Drops all installed handlers (breaks owner<->handler reference
  /// cycles once the owner saw the close event).
  void clearHandlers() {
    Data = nullptr;
    End = nullptr;
    Close = nullptr;
  }

  bool isEnded() const { return Ended; }
  bool isDestroyed() const { return Destroyed; }

private:
  friend class Network;

  void deliverData(const std::string &Bytes);
  void deliverEnd();
  void deliverClose();

  Kernel *K = nullptr;
  SimTime Latency = 0;
  std::weak_ptr<Socket> Peer;
  DataHandler Data;
  EventHandler End;
  EventHandler Close;
  bool Ended = false;
  bool Destroyed = false;
};

/// The simulated network: a port table plus socket-pair plumbing.
class Network {
public:
  /// \p LatencyUs is the one-way delivery latency for connect/data/end.
  Network(Kernel &K, SimTime LatencyUs = 50) : K(K), LatencyUs(LatencyUs) {}

  using AcceptHandler = std::function<void(std::shared_ptr<Socket>)>;
  using ConnectHandler = std::function<void(std::shared_ptr<Socket>)>;

  /// Starts listening on \p Port. Returns false if the port is in use.
  bool listen(int Port, AcceptHandler OnAccept);

  /// Stops listening on \p Port.
  void closePort(int Port);

  bool isListening(int Port) const { return Listeners.count(Port) != 0; }

  /// Connects to \p Port. After the latency, the listener's accept handler
  /// receives the server endpoint and \p OnConnect receives the client
  /// endpoint. Returns false immediately if nothing listens on the port.
  bool connect(int Port, ConnectHandler OnConnect);

  SimTime latency() const { return LatencyUs; }

private:
  Kernel &K;
  SimTime LatencyUs;
  std::map<int, AcceptHandler> Listeners;
};

} // namespace sim
} // namespace asyncg

#endif // ASYNCG_SIM_NETWORK_H
