//===- Network.h - Simulated TCP sockets and listeners ----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated TCP layer: listening ports, socket pairs, and message
/// delivery with configurable virtual latency through the kernel.
/// The node-layer net/http modules wrap these raw sockets in EventEmitter
/// objects; the workload driver connects from "outside" the JS world, the
/// way JMeter drives the AcmeAir server in the paper's evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_NETWORK_H
#define ASYNCG_SIM_NETWORK_H

#include "sim/Kernel.h"

#include <functional>
#include <map>
#include <memory>
#include <string>

namespace asyncg {
namespace sim {

class Network;

/// How protocol messages map onto real socket bytes (Epoll backend; the
/// simulated network delivers messages directly and never consults this).
enum class WireFormat {
  /// node::Http's REQ/DAT/END//RES messages become real HTTP/1.1
  /// requests/responses with Content-Length framing and keep-alive.
  Http1,
  /// 4-byte big-endian length prefix per message (binary-safe; for raw
  /// net.Socket protocols that are not HTTP).
  Framed,
};

/// One endpoint of a TCP connection. The base class is the simulated
/// implementation: data written here is delivered to the peer endpoint's
/// data handler after the network latency, each write() being one discrete
/// data event. EpollSocket overrides the output methods to move real bytes
/// through a non-blocking fd while delivering the same discrete messages
/// upward through the protected deliver* helpers, so the node layer cannot
/// tell the backends apart.
class Socket : public std::enable_shared_from_this<Socket> {
public:
  using DataHandler = std::function<void(const std::string &)>;
  using EventHandler = std::function<void()>;

  virtual ~Socket();

  /// Installs the handler invoked when the peer sends data.
  void onData(DataHandler H) { Data = std::move(H); }
  /// Installs the handler invoked when the peer half-closes.
  void onEnd(EventHandler H) { End = std::move(H); }
  /// Installs the handler invoked when the connection is torn down.
  void onClose(EventHandler H) { Close = std::move(H); }

  /// Sends \p Bytes to the peer. Returns false after end()/destroy().
  virtual bool write(const std::string &Bytes);

  /// Half-closes: the peer sees an end event after the latency.
  virtual void end();

  /// Tears the connection down; both endpoints see a close event.
  virtual void destroy();

  /// Drops all installed handlers (breaks owner<->handler reference
  /// cycles once the owner saw the close event).
  void clearHandlers() {
    Data = nullptr;
    End = nullptr;
    Close = nullptr;
  }

  bool isEnded() const { return Ended; }
  bool isDestroyed() const { return Destroyed; }

protected:
  /// Local-side event delivery, shared by both backends. Handlers run in
  /// the caller's context — kernel completions for the sim backend, the
  /// loop's I/O phase for epoll.
  void deliverData(const std::string &Bytes);
  void deliverEnd();
  void deliverClose();

  bool Ended = false;
  bool Destroyed = false;

private:
  friend class Network;

  Kernel *K = nullptr;
  SimTime Latency = 0;
  std::weak_ptr<Socket> Peer;
  DataHandler Data;
  EventHandler End;
  EventHandler Close;
};

/// The network: a listener table plus connection plumbing. The base class
/// is the simulated network (loopback socket pairs with virtual latency);
/// EpollNetwork overrides the virtual surface with real listening sockets.
class Network {
public:
  /// \p LatencyUs is the one-way delivery latency for connect/data/end.
  Network(Kernel &K, SimTime LatencyUs = 50) : K(K), LatencyUs(LatencyUs) {}
  virtual ~Network();

  using AcceptHandler = std::function<void(std::shared_ptr<Socket>)>;
  using ConnectHandler = std::function<void(std::shared_ptr<Socket>)>;

  /// Starts listening on \p Port. Returns false if the port is in use.
  bool listen(int Port, AcceptHandler OnAccept) {
    return listenWithBacklog(Port, std::move(OnAccept), /*Backlog=*/-1);
  }

  /// listen() with an explicit accept backlog; <= 0 means the network's
  /// configured default. Meaningful for real sockets — the simulated
  /// network accepts everything regardless.
  virtual bool listenWithBacklog(int Port, AcceptHandler OnAccept,
                                 int Backlog);

  /// Stops listening on \p Port.
  virtual void closePort(int Port);

  virtual bool isListening(int Port) const {
    return Listeners.count(Port) != 0;
  }

  /// Connects to \p Port. After the latency, the listener's accept handler
  /// receives the server endpoint and \p OnConnect receives the client
  /// endpoint. Returns false immediately if the connection can not be
  /// initiated (sim: nothing listens on the port). Real backends may only
  /// discover refusal asynchronously: the connect then "succeeds" and the
  /// socket delivers a close event without any data.
  virtual bool connect(int Port, ConnectHandler OnConnect);

  SimTime latency() const { return LatencyUs; }

private:
  Kernel &K;
  SimTime LatencyUs;
  std::map<int, AcceptHandler> Listeners;
};

} // namespace sim
} // namespace asyncg

#endif // ASYNCG_SIM_NETWORK_H
