//===- FileSystem.h - Simulated asynchronous file system --------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-memory file store with asynchronous read/write completing through
/// the simulated kernel, backing the node-layer `fs` module.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_FILESYSTEM_H
#define ASYNCG_SIM_FILESYSTEM_H

#include "sim/Kernel.h"

#include <functional>
#include <map>
#include <string>

namespace asyncg {
namespace sim {

/// Result of an asynchronous file operation: empty Error means success.
struct FileResult {
  std::string Error;
  std::string Data;
  bool ok() const { return Error.empty(); }
};

/// The simulated file system.
class FileSystem {
public:
  FileSystem(Kernel &K, SimTime LatencyUs = 100) : K(K), LatencyUs(LatencyUs) {}

  /// Creates/overwrites a file synchronously (setup helper for tests).
  void putFile(const std::string &Path, std::string Contents) {
    Files[Path] = std::move(Contents);
  }

  bool exists(const std::string &Path) const { return Files.count(Path) != 0; }

  /// Synchronous read; asserts the file exists (setup helper).
  const std::string &getFile(const std::string &Path) const {
    return Files.at(Path);
  }

  /// Asynchronous read completing in the I/O phase after the fs latency.
  void readFileAsync(const std::string &Path,
                     std::function<void(FileResult)> Done);

  /// Asynchronous write completing in the I/O phase after the fs latency.
  void writeFileAsync(const std::string &Path, std::string Contents,
                      std::function<void(FileResult)> Done);

private:
  Kernel &K;
  SimTime LatencyUs;
  std::map<std::string, std::string> Files;
};

} // namespace sim
} // namespace asyncg

#endif // ASYNCG_SIM_FILESYSTEM_H
