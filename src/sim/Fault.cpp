//===- Fault.cpp - Deterministic fault injection ------------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/Fault.h"

#include <cstdio>
#include <cstdlib>

using namespace asyncg;
using namespace asyncg::sim;

const char *sim::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::Eintr:
    return "eintr";
  case FaultKind::Eagain:
    return "eagain";
  case FaultKind::Emfile:
    return "emfile";
  case FaultKind::Enobufs:
    return "enobufs";
  case FaultKind::ShortWrite:
    return "shortwrite";
  case FaultKind::Reset:
    return "reset";
  case FaultKind::Jitter:
    return "jitter";
  }
  return "?";
}

FaultSpec FaultSpec::defaultMix() {
  FaultSpec S;
  S.Rate[static_cast<size_t>(FaultKind::Eintr)] = 0.02;
  S.Rate[static_cast<size_t>(FaultKind::Eagain)] = 0.01;
  S.Rate[static_cast<size_t>(FaultKind::Emfile)] = 0.001;
  S.Rate[static_cast<size_t>(FaultKind::Enobufs)] = 0.005;
  S.Rate[static_cast<size_t>(FaultKind::ShortWrite)] = 0.05;
  S.Rate[static_cast<size_t>(FaultKind::Reset)] = 0.002;
  S.Rate[static_cast<size_t>(FaultKind::Jitter)] = 0.01;
  return S;
}

static bool parseKind(const std::string &Name, FaultKind &Out) {
  for (size_t I = 0; I < NumFaultKinds; ++I) {
    FaultKind K = static_cast<FaultKind>(I);
    if (Name == faultKindName(K)) {
      Out = K;
      return true;
    }
  }
  return false;
}

bool FaultSpec::parse(const std::string &Text, FaultSpec &Out,
                      std::string *Err) {
  Out = FaultSpec();
  if (Text.empty())
    return true;
  if (Text == "default") {
    Out = defaultMix();
    return true;
  }
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Comma = Text.find(',', Pos);
    std::string Item = Text.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Text.size() + 1 : Comma + 1;
    if (Item.empty()) {
      if (Err)
        *Err = "fault-spec: empty entry";
      return false;
    }
    size_t Colon = Item.find(':');
    if (Colon == std::string::npos) {
      if (Err)
        *Err = "fault-spec: expected kind:rate, got '" + Item + "'";
      return false;
    }
    std::string Name = Item.substr(0, Colon);
    FaultKind K;
    if (!parseKind(Name, K)) {
      if (Err)
        *Err = "fault-spec: unknown fault kind '" + Name +
               "' (kinds: eintr, eagain, emfile, enobufs, shortwrite, "
               "reset, jitter)";
      return false;
    }
    char *End = nullptr;
    std::string RateText = Item.substr(Colon + 1);
    double R = std::strtod(RateText.c_str(), &End);
    if (RateText.empty() || End == RateText.c_str() || *End != '\0' ||
        R < 0.0 || R > 1.0) {
      if (Err)
        *Err = "fault-spec: rate for '" + Name +
               "' must be a number in [0,1], got '" + RateText + "'";
      return false;
    }
    Out.Rate[static_cast<size_t>(K)] = R;
  }
  return true;
}

std::string FaultSpec::str() const {
  std::string S;
  char Buf[64];
  for (size_t I = 0; I < NumFaultKinds; ++I) {
    if (Rate[I] <= 0)
      continue;
    std::snprintf(Buf, sizeof(Buf), "%s%s:%g", S.empty() ? "" : ",",
                  faultKindName(static_cast<FaultKind>(I)), Rate[I]);
    S += Buf;
  }
  return S;
}
