//===- UringNetwork.cpp - Real TCP sockets over io_uring ----------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#ifdef __linux__

#include "sim/UringNetwork.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

using namespace asyncg;
using namespace asyncg::sim;

//===----------------------------------------------------------------------===//
// UringSocket
//===----------------------------------------------------------------------===//

UringSocket::UringSocket(UringKernel &UK, int Fd,
                         std::unique_ptr<WireCodec> Codec)
    : UK(UK), Fd(Fd), Codec(std::move(Codec)) {}

UringSocket::~UringSocket() {
  if (Fd >= 0)
    teardown(/*Reset=*/false);
}

void UringSocket::armRecv() {
  if (Fd < 0 || SawEof || RecvToken != 0)
    return;
  std::weak_ptr<UringSocket> Self =
      std::static_pointer_cast<UringSocket>(shared_from_this());
  RecvToken = UK.stageRecv(Fd, [Self](int Res, const char *Data) {
    if (auto S = Self.lock())
      S->onRecv(Res, Data);
  });
}

bool UringSocket::write(const std::string &Msg) {
  if (Ended || Destroyed || Fd < 0)
    return false;
  Codec->encode(Msg, Out);
  pumpSend();
  return true;
}

void UringSocket::end() {
  if (Ended || Destroyed || Fd < 0)
    return;
  Ended = true;
  if (pendingOutBytes() > 0) {
    EndAfterFlush = true;
    return;
  }
  ::shutdown(Fd, SHUT_WR);
  UK.noteSyscalls(1);
  if (SawEof)
    teardown(/*Reset=*/false);
}

void UringSocket::destroy() {
  if (Destroyed)
    return;
  Destroyed = true;
  teardown(/*Reset=*/true);
  // Deliver close asynchronously, like the sim's latency-delayed delivery:
  // the caller's tick finishes before the close callback is scheduled.
  std::weak_ptr<UringSocket> Self =
      std::static_pointer_cast<UringSocket>(shared_from_this());
  UK.submit(0, [Self] {
    if (auto S = Self.lock())
      S->deliverClose();
  });
}

void UringSocket::onRecv(int Res, const char *Data) {
  RecvToken = 0;
  if (Fd < 0 || Destroyed)
    return;
  if (Res > 0) {
    std::vector<std::string> Msgs;
    if (!Codec->ingest(Data, static_cast<size_t>(Res), Msgs)) {
      failConnection();
      return;
    }
    // Deliver each message as its own kernel completion: the simulated
    // network delivers one message per latency-delayed op, so per-message
    // submits keep the tick structure (and with it detector behavior and
    // the Async Graph shape) identical across backends.
    std::weak_ptr<UringSocket> Self =
        std::static_pointer_cast<UringSocket>(shared_from_this());
    for (std::string &M : Msgs)
      UK.submit(0, [Self, Msg = std::move(M)] {
        if (auto S = Self.lock())
          S->deliverData(Msg);
      });
    armRecv();
    return;
  }
  if (Res == 0) {
    // Peer FIN. Deliver end once (after any queued data messages); our
    // outgoing direction stays open — the peer can still receive writes —
    // and the fd is released once our own end() has flushed. No close
    // event for this path (sim parity). No recv re-arm: EOF is final.
    if (!SawEof) {
      SawEof = true;
      std::weak_ptr<UringSocket> Self =
          std::static_pointer_cast<UringSocket>(shared_from_this());
      UK.submit(0, [Self] {
        if (auto S = Self.lock())
          S->deliverEnd();
      });
    }
    if (Ended && Fd >= 0 && pendingOutBytes() == 0)
      teardown(/*Reset=*/false);
    return;
  }
  if (Res == -ECANCELED || Res == -EINTR || Res == -EAGAIN) {
    if (Res != -ECANCELED)
      armRecv(); // spurious short-circuit: retry
    return;
  }
  // ECONNRESET and friends: the sim analogue is the peer destroying the
  // pair — a close event.
  failConnection();
}

void UringSocket::pumpSend() {
  if (SendToken != 0 || Out.empty() || Fd < 0)
    return;
  std::string Chunk = std::move(Out);
  Out.clear();
  ChunkOff = 0;
  InFlightOut = Chunk.size();
  // Optimistic inline send first, mirroring the epoll backend's
  // flushOut(): the common case completes without a ring round-trip, and
  // bytes written before a destroy() in the same tick are actually on the
  // wire — the simulated network also delivers writes that precede a
  // reset. Only an EAGAIN remainder rides the ring as a send SQE.
  while (ChunkOff < Chunk.size()) {
    ssize_t N = ::send(Fd, Chunk.data() + ChunkOff, Chunk.size() - ChunkOff,
                       MSG_NOSIGNAL);
    UK.noteSyscalls(1);
    if (N > 0) {
      ChunkOff += static_cast<size_t>(N);
      InFlightOut = Chunk.size() - ChunkOff;
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    failConnection();
    return;
  }
  if (ChunkOff < Chunk.size()) {
    std::weak_ptr<UringSocket> Self =
        std::static_pointer_cast<UringSocket>(shared_from_this());
    SendToken = UK.stageSend(Fd, std::move(Chunk), ChunkOff,
                             [Self](int Res, std::string C) {
                               if (auto S = Self.lock())
                                 S->onSend(Res, std::move(C));
                             });
    return;
  }
  // Flushed inline: the same completion duties onSend() performs after the
  // chunk drains (a queued shutdown from end() during the flush).
  ChunkOff = 0;
  InFlightOut = 0;
  if (EndAfterFlush) {
    EndAfterFlush = false;
    ::shutdown(Fd, SHUT_WR);
    UK.noteSyscalls(1);
    if (SawEof)
      teardown(/*Reset=*/false);
  }
}

void UringSocket::onSend(int Res, std::string Chunk) {
  SendToken = 0;
  if (Fd < 0 || Destroyed)
    return;
  if (Res <= 0) {
    if (Res == -EINTR || Res == -EAGAIN) {
      // Retry the same chunk from the same offset (ownership came back).
      std::weak_ptr<UringSocket> Self =
          std::static_pointer_cast<UringSocket>(shared_from_this());
      SendToken = UK.stageSend(Fd, std::move(Chunk), ChunkOff,
                               [Self](int R, std::string C) {
                                 if (auto S = Self.lock())
                                   S->onSend(R, std::move(C));
                               });
      return;
    }
    if (Res == -ECANCELED)
      return;
    failConnection();
    return;
  }
  ChunkOff += static_cast<size_t>(Res);
  InFlightOut = Chunk.size() - ChunkOff;
  if (ChunkOff < Chunk.size()) {
    // Partial send: re-stage the remainder by offset — the chunk moves
    // back into the kernel's entry, no copy.
    std::weak_ptr<UringSocket> Self =
        std::static_pointer_cast<UringSocket>(shared_from_this());
    SendToken = UK.stageSend(Fd, std::move(Chunk), ChunkOff,
                             [Self](int R, std::string C) {
                               if (auto S = Self.lock())
                                 S->onSend(R, std::move(C));
                             });
    return;
  }
  ChunkOff = 0;
  InFlightOut = 0;
  if (!Out.empty()) {
    pumpSend();
    return;
  }
  if (EndAfterFlush) {
    EndAfterFlush = false;
    ::shutdown(Fd, SHUT_WR);
    UK.noteSyscalls(1);
    if (SawEof)
      teardown(/*Reset=*/false);
  }
}

void UringSocket::teardown(bool Reset) {
  if (Fd < 0)
    return;
  // Cancel in-flight ops first: handlers never fire, and the kernel-owned
  // entries (with any buffers io_uring may still write) outlive the fd.
  if (RecvToken != 0) {
    UK.cancelIo(RecvToken);
    RecvToken = 0;
  }
  if (SendToken != 0) {
    UK.cancelIo(SendToken);
    SendToken = 0;
  }
  if (ConnectToken != 0) {
    UK.cancelIo(ConnectToken);
    ConnectToken = 0;
  }
  if (Reset) {
    // Abortive close: RST the peer, like sim destroy() closing both ends.
    linger L{1, 0};
    setsockopt(Fd, SOL_SOCKET, SO_LINGER, &L, sizeof(L));
    UK.noteSyscalls(1);
  }
  ::close(Fd);
  UK.noteSyscalls(1);
  Fd = -1;
  Out.clear();
  InFlightOut = 0;
  ChunkOff = 0;
  EndAfterFlush = false;
}

void UringSocket::failConnection() {
  bool WasDestroyed = Destroyed;
  teardown(false);
  if (WasDestroyed)
    return;
  // Async like the sim's latency-delayed close delivery: the tick that
  // noticed the failure finishes before the close callback runs.
  std::weak_ptr<UringSocket> Self =
      std::static_pointer_cast<UringSocket>(shared_from_this());
  UK.submit(0, [Self] {
    if (auto S = Self.lock())
      S->deliverClose();
  });
}

//===----------------------------------------------------------------------===//
// UringNetwork
//===----------------------------------------------------------------------===//

namespace {

int makeNonBlockingSocket() {
  return ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

sockaddr_in loopbackAddr(int Port) {
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return Addr;
}

} // namespace

UringNetwork::UringNetwork(UringKernel &UK, SimTime LatencyUs, WireFormat Wire,
                           int DefaultBacklog)
    : Network(UK, LatencyUs), UK(UK), Wire(Wire),
      DefaultBacklog(DefaultBacklog) {}

UringNetwork::~UringNetwork() {
  // Quiet teardown: no close events. The runtime is being destroyed —
  // delivering events now would run node-layer callbacks into it.
  for (auto &[Port, L] : Ports) {
    (void)Port;
    UK.cancelIo(L.AcceptToken);
    ::close(L.Fd);
    UK.noteSyscalls(1);
  }
  Ports.clear();
  for (auto &WeakS : Sockets)
    if (auto S = WeakS.lock())
      S->teardown(/*Reset=*/true);
  Sockets.clear();
}

bool UringNetwork::listenWithBacklog(int Port, AcceptHandler OnAccept,
                                     int Backlog) {
  if (Ports.count(Port))
    return false;
  int Fd = makeNonBlockingSocket();
  if (Fd < 0)
    return false;
  int One = 1;
  setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  // SO_REUSEPORT: cluster shards all bind this port; the Linux kernel
  // accept-balances across the listening fds (one per loop).
  setsockopt(Fd, SOL_SOCKET, SO_REUSEPORT, &One, sizeof(One));
  sockaddr_in Addr = loopbackAddr(Port);
  UK.noteSyscalls(5); // socket + 2x setsockopt + bind + listen
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, Backlog > 0 ? Backlog : DefaultBacklog) != 0) {
    ::close(Fd);
    return false;
  }
  // One multishot accept SQE serves the listener's whole lifetime (until
  // cancelled); each incoming connection is one CQE, no accept4 loop.
  uint64_t Token =
      UK.stageAccept(Fd, [this, Port](int NewFd) { onAccepted(Port, NewFd); });
  Ports.emplace(Port, Listener{Fd, Token, std::move(OnAccept)});
  return true;
}

void UringNetwork::onAccepted(int Port, int NewFd) {
  auto It = Ports.find(Port);
  if (It == Ports.end()) {
    // Completion raced a closePort: the connection has no owner.
    ::close(NewFd);
    UK.noteSyscalls(1);
    return;
  }
  int One = 1;
  setsockopt(NewFd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  UK.noteSyscalls(1);
  ++Accepted;
  auto Sock = adopt(NewFd, /*ServerRole=*/true, /*Arm=*/true);
  if (It->second.OnAccept)
    It->second.OnAccept(Sock);
}

std::shared_ptr<UringSocket> UringNetwork::adopt(int Fd, bool ServerRole,
                                                bool Arm) {
  std::shared_ptr<UringSocket> Sock(
      new UringSocket(UK, Fd, makeWireCodec(Wire, ServerRole)));
  if (Arm)
    Sock->armRecv();
  // Compact expired entries so long-serving processes stay bounded.
  size_t W = 0;
  for (size_t I = 0; I != Sockets.size(); ++I)
    if (!Sockets[I].expired())
      Sockets[W++] = std::move(Sockets[I]);
  Sockets.resize(W);
  Sockets.push_back(Sock);
  return Sock;
}

void UringNetwork::closePort(int Port) {
  auto It = Ports.find(Port);
  if (It == Ports.end())
    return;
  UK.cancelIo(It->second.AcceptToken);
  ::close(It->second.Fd);
  UK.noteSyscalls(1);
  Ports.erase(It);
}

bool UringNetwork::isListening(int Port) const {
  return Ports.count(Port) != 0;
}

bool UringNetwork::connect(int Port, ConnectHandler OnConnect) {
  int Fd = makeNonBlockingSocket();
  if (Fd < 0)
    return false;
  int One = 1;
  setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  UK.noteSyscalls(2); // socket + setsockopt (connect is an SQE)
  auto Sock = adopt(Fd, /*ServerRole=*/false, /*Arm=*/false);
  // The connect handler pins the socket strongly (nothing else holds it
  // until OnConnect hands it to the caller); cancelIo drops the handler —
  // and with it the pin — if the socket is torn down first.
  std::shared_ptr<UringSocket> Pin = Sock;
  ConnectHandler Done = std::move(OnConnect);
  Sock->ConnectToken =
      UK.stageConnect(Fd, loopbackAddr(Port), [Pin, Done](int Res) {
        Pin->ConnectToken = 0;
        if (Pin->Fd < 0)
          return;
        if (Res != 0) {
          // Refused: the op vanishes and the socket delivers close — real
          // backends cannot report refusal synchronously like the sim.
          Pin->failConnection();
          return;
        }
        Pin->armRecv();
        if (Done)
          Done(Pin);
      });
  return true;
}

void UringNetwork::teardownAll() {
  for (auto &[Port, L] : Ports) {
    (void)Port;
    UK.cancelIo(L.AcceptToken);
    ::close(L.Fd);
    UK.noteSyscalls(1);
  }
  Ports.clear();
  for (auto &WeakS : Sockets)
    if (auto S = WeakS.lock())
      if (!S->Destroyed && S->Fd >= 0) {
        S->teardown(/*Reset=*/true);
        S->deliverClose();
      }
  Sockets.clear();
}

#endif // __linux__
