//===- FileSystem.cpp - Simulated asynchronous file system -----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/FileSystem.h"

using namespace asyncg;
using namespace asyncg::sim;

void FileSystem::readFileAsync(const std::string &Path,
                               std::function<void(FileResult)> Done) {
  K.submit(LatencyUs, [this, Path, Done = std::move(Done)] {
    auto It = Files.find(Path);
    if (It == Files.end()) {
      Done(FileResult{"ENOENT: no such file '" + Path + "'", ""});
      return;
    }
    Done(FileResult{"", It->second});
  });
}

void FileSystem::writeFileAsync(const std::string &Path, std::string Contents,
                                std::function<void(FileResult)> Done) {
  K.submit(LatencyUs,
           [this, Path, Contents = std::move(Contents), Done = std::move(Done)] {
             Files[Path] = Contents;
             Done(FileResult{"", ""});
           });
}
