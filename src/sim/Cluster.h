//===- Cluster.h - Shared kernel state for multi-loop clusters --*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel-side machinery cluster mode shares between N event loops on N
/// threads (SO_REUSEPORT-style): per-loop delivery queues for cross-loop
/// messages, a deterministic accept balancer, and distributed-termination
/// detection so every loop knows when the whole cluster has drained.
///
/// Each loop keeps its own sim::Kernel/Network/Clock — virtual time is
/// per-loop, exactly like wall time is per-core — and the ClusterKernel is
/// the only synchronized object between them. Messages are plain data
/// (shard ids, a handoff id minted by the sender's runtime, and a string
/// payload); everything instrumentation-visible happens on the two loop
/// threads, never inside the shared kernel.
///
/// Termination: a loop with no local work parks in waitForWork(), which
/// counts it idle. When every loop is idle and every delivery queue is
/// empty the cluster has quiesced — no message can ever arrive again,
/// because posts only happen from non-idle loops — and all parked loops
/// are released to run their normal exit path ('beforeExit', loop end).
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_CLUSTER_H
#define ASYNCG_SIM_CLUSTER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace asyncg {
namespace sim {

/// One cross-loop message. Plain data: the instrumentation-visible events
/// (the send's CT, the delivery tick's CE) are fired on the loop threads.
struct ClusterMessage {
  /// Sending shard.
  uint32_t From = 0;
  /// Handoff id minted by the sender's runtime (a TriggerId in the
  /// sender's shard namespace). The receiver dispatches the delivery tick
  /// with this as its Sched, which is what the graph merge joins on.
  uint64_t Handoff = 0;
  /// Message payload (the cluster layer's serialized message).
  std::string Payload;
};

/// Aggregated per-shard delivery counters (for reports and tests).
struct ClusterShardStats {
  uint64_t Posted = 0;    ///< Messages this shard sent.
  uint64_t Delivered = 0; ///< Messages drained by this shard.
};

/// The shared cluster kernel. Thread-safe; one instance per cluster,
/// referenced by every loop's port.
class ClusterKernel {
public:
  explicit ClusterKernel(uint32_t NumShards);

  uint32_t size() const { return NumShards; }

  /// Deterministic SO_REUSEPORT-style balancer: the shard that accepts the
  /// \p N-th arriving client. Static round robin, so a cluster run is
  /// reproducible from the seed alone.
  uint32_t shardForClient(uint64_t N) const {
    return static_cast<uint32_t>(N % NumShards);
  }

  /// Posts a message from \p M.From to \p ToShard. Must be called from a
  /// non-idle loop thread (loop code that is running cannot be parked).
  /// Returns false once the cluster has quiesced — late posts from exit
  /// paths are dropped rather than resurrecting drained loops.
  bool post(uint32_t ToShard, ClusterMessage M);

  /// Registers a wake callback for \p Shard, fired after every post to it.
  /// A sim-backend loop with nothing due parks on this kernel's condition
  /// variable, which post() already notifies; an epoll-backend loop blocks
  /// in epoll_wait instead, where the condition variable cannot reach it —
  /// the hook (EpollKernel::wakeup) nudges that wait so the loop re-enters
  /// its pump. Must be thread-safe; invoked outside the kernel lock.
  void setWakeHook(uint32_t Shard, std::function<void()> Hook);

  /// Moves all pending deliveries for \p Shard into \p Out (appending).
  /// Returns the number drained.
  size_t drain(uint32_t Shard, std::vector<ClusterMessage> &Out);

  /// Parks \p Shard as idle. Returns true when new deliveries (may) await —
  /// the caller re-enters its loop and pumps — or false once the whole
  /// cluster has quiesced. See the file comment for the protocol.
  bool waitForWork(uint32_t Shard);

  /// True once every loop went idle with all queues empty.
  bool quiesced() const;

  /// Per-shard post/delivery counters (racy reads are fine after join).
  ClusterShardStats shardStats(uint32_t Shard) const;

private:
  const uint32_t NumShards;

  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::vector<std::deque<ClusterMessage>> Queues;
  std::vector<ClusterShardStats> Stats;
  std::vector<std::function<void()>> WakeHooks;
  uint32_t IdleCount = 0;
  bool Quiesced = false;
};

} // namespace sim
} // namespace asyncg

#endif // ASYNCG_SIM_CLUSTER_H
