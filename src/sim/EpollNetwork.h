//===- EpollNetwork.h - Real TCP sockets behind the sim interface -*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-traffic network backend: 127.0.0.1 listeners and non-blocking
/// TCP sockets registered with an EpollKernel, behind the same
/// listen/connect/Socket surface the simulated network exposes. Each
/// socket runs a WireCodec translating between the byte stream and the
/// discrete protocol messages the node layer exchanges, so node::Net,
/// node::Http, the instrumentation, and the Async Graph are backend-blind.
///
/// Listeners bind with SO_REUSEADDR + SO_REUSEPORT: in cluster mode every
/// shard binds the same port and the Linux kernel balances accepts across
/// the loops — the real mechanism the simulated ClusterKernel's
/// round-robin shardForClient models.
///
/// Event mapping (chosen to match what the simulated network delivers on
/// the same logical workload):
///  - arriving bytes -> completed codec messages -> data events;
///  - peer FIN (clean close) -> end event, then the fd is quietly released
///    (the sim network fires no close event for an end()ed pair either);
///  - peer RST / write error -> close event (sim: destroy() on one side
///    delivers close to both);
///  - destroy() -> RST to the peer (SO_LINGER 0), close event locally.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_EPOLLNETWORK_H
#define ASYNCG_SIM_EPOLLNETWORK_H

#ifdef __linux__

#include "sim/EpollKernel.h"
#include "sim/Fault.h"
#include "sim/Network.h"
#include "sim/WireCodec.h"

#include <map>
#include <memory>
#include <vector>

namespace asyncg {
namespace sim {

class EpollNetwork;

/// A real non-blocking TCP socket endpoint. Created by EpollNetwork on
/// accept/connect; never constructed directly.
class EpollSocket final : public Socket {
public:
  ~EpollSocket() override;

  bool write(const std::string &Msg) override;
  void end() override;
  void destroy() override;

  /// Bytes currently buffered waiting for the fd to become writable.
  size_t pendingOutBytes() const { return Out.size() - OutOff; }

private:
  friend class EpollNetwork;

  EpollSocket(EpollKernel &EK, int Fd, std::unique_ptr<WireCodec> Codec);

  /// Starts watching the fd; must run after shared_from_this is valid.
  void arm();
  void onEvents(uint32_t Events);
  void onReadable();
  /// Flushes the out buffer; adjusts the EPOLLOUT interest. Returns false
  /// when the connection failed (a close event was delivered).
  bool flushOut();
  /// Re-derives the interest mask: EPOLLIN until EOF, EPOLLOUT while the
  /// out buffer has bytes. A mask of zero unregisters the fd entirely —
  /// a FIN-ed fd is level-triggered readable forever, so keeping EPOLLIN
  /// after EOF would spin the loop.
  void updateInterest();
  /// Releases the fd (unwatch + close). \p Reset sends RST to the peer.
  void teardown(bool Reset);
  void failConnection();

  EpollKernel &EK;
  int Fd = -1;
  std::unique_ptr<WireCodec> Codec;
  std::string Out;
  size_t OutOff = 0;
  /// Currently registered epoll event mask; 0 when the fd is unwatched.
  uint32_t Interest = 0;
  bool EndAfterFlush = false;
  bool SawEof = false;
  /// Optional fault injection (owned by the runtime; outlives the socket).
  FaultInjector *Faults = nullptr;
  /// Recovery counters shared with the owning network.
  std::shared_ptr<NetRecoveryStats> RS;
  /// Consecutive ENOBUFS results on this socket; the bounded-backoff retry
  /// gives up (draining the connection) when the streak exceeds the cap.
  uint32_t EnobufsStreak = 0;
  /// True while a backoff-timer flush retry is scheduled.
  bool FlushRetryArmed = false;
};

/// The epoll-backed network. One instance per runtime, owned by it.
class EpollNetwork final : public Network {
public:
  /// \p DefaultBacklog applies to listen() calls without an explicit
  /// backlog. LatencyUs is carried only for latency() callers (real
  /// latency is whatever the wire provides).
  EpollNetwork(EpollKernel &EK, SimTime LatencyUs, WireFormat Wire,
               int DefaultBacklog = 128);
  ~EpollNetwork() override;

  bool listenWithBacklog(int Port, AcceptHandler OnAccept,
                         int Backlog) override;
  void closePort(int Port) override;
  bool isListening(int Port) const override;
  bool connect(int Port, ConnectHandler OnConnect) override;

  /// Force-releases every live socket (delivering close events) and every
  /// listener. The cluster harness's shutdown path uses this so a serving
  /// loop with lingering connections still drains.
  void teardownAll();

  /// Accepted-connection count (for stats/tests).
  uint64_t acceptedCount() const { return Accepted; }

  /// Installs a fault injector consulted at the accept/recv/send syscall
  /// wrap points (and inherited by every socket created afterwards).
  /// Pass nullptr to disable. The injector must outlive the network.
  void setFaultInjector(FaultInjector *Inj) { Faults = Inj; }

  /// Hardened-path counters (EINTR retries, accept pauses, backoffs, and
  /// the faults injected into them).
  const NetRecoveryStats &recoveryStats() const { return *RS; }

  /// Microseconds an EMFILE/ENFILE accept failure pauses the listener
  /// before re-arming (tests shrink this).
  void setAcceptPauseUs(SimTime Us) { AcceptPauseUs = Us; }

private:
  struct Listener {
    int Fd = -1;
    AcceptHandler OnAccept;
    bool Paused = false;
  };

  void onAcceptable(int ListenFd, const AcceptHandler &OnAccept);
  /// EMFILE/ENFILE: stop accepting (unwatch the listen fd) and schedule a
  /// resume — the kernel keeps queueing connections in the backlog, and
  /// accepting again later succeeds once fds free up. Without the pause, a
  /// level-triggered listener spins the loop at 100% on a full fd table.
  void pauseAccept(int ListenFd);
  void resumeAccept(int ListenFd);
  std::shared_ptr<EpollSocket> adopt(int Fd, bool ServerRole);

  EpollKernel &EK;
  WireFormat Wire;
  int DefaultBacklog;
  std::map<int, Listener> Ports;
  std::vector<std::weak_ptr<EpollSocket>> Sockets;
  uint64_t Accepted = 0;
  FaultInjector *Faults = nullptr;
  std::shared_ptr<NetRecoveryStats> RS = std::make_shared<NetRecoveryStats>();
  SimTime AcceptPauseUs = 5000;
};

} // namespace sim
} // namespace asyncg

#endif // __linux__
#endif // ASYNCG_SIM_EPOLLNETWORK_H
