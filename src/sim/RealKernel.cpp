//===- RealKernel.cpp - Shared base of the real-time kernel backends ----------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#ifdef __linux__

#include "sim/RealKernel.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>

using namespace asyncg;
using namespace asyncg::sim;

RealKernel::RealKernel(Clock &C)
    : Kernel(C), Origin(std::chrono::steady_clock::now()) {
  EvFd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  ++Stats.Syscalls; // eventfd()
}

RealKernel::~RealKernel() {
  if (EvFd >= 0)
    ::close(EvFd);
}

void RealKernel::syncClock() {
  auto El = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - Origin)
                .count();
  clock().advanceTo(static_cast<SimTime>(El));
}

void RealKernel::submitExternal(std::function<void()> Action) {
  {
    std::lock_guard<std::mutex> Lock(ExternalMu);
    External.push_back(std::move(Action));
    HasExternal.store(true, std::memory_order_release);
  }
  wakeup();
}

void RealKernel::requestStop() {
  StopRequested.store(true, std::memory_order_release);
  wakeup();
}

void RealKernel::wakeup() {
  uint64_t One = 1;
  ssize_t N;
  // Retry EINTR: a lost wakeup write can strand an external submit until
  // the next unrelated event. EAGAIN is fine — the counter is already
  // nonzero, so a wakeup is pending.
  do {
    N = ::write(EvFd, &One, sizeof(One));
  } while (N < 0 && errno == EINTR);
  (void)N;
  WakeupCalls.fetch_add(1, std::memory_order_relaxed);
}

void RealKernel::drainExternalInto(std::vector<std::function<void()>> &Due) {
  if (!hasExternalWork())
    return;
  std::vector<std::function<void()>> Ext;
  {
    std::lock_guard<std::mutex> Lock(ExternalMu);
    Ext.swap(External);
    HasExternal.store(false, std::memory_order_release);
  }
  for (auto &A : Ext)
    Due.push_back(std::move(A));
}

bool RealKernel::externalQueueEmpty() const {
  std::lock_guard<std::mutex> Lock(ExternalMu);
  return External.empty();
}

KernelStats RealKernel::kernelStats() const {
  KernelStats Out = Stats;
  uint64_t Wakes = WakeupCalls.load(std::memory_order_relaxed);
  Out.Wakeups = Wakes;
  Out.Syscalls += Wakes; // each wakeup() is one eventfd write(2)
  return Out;
}

#endif // __linux__
