//===- Network.cpp - Simulated TCP sockets and listeners -------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/Network.h"

#include <cassert>

using namespace asyncg;
using namespace asyncg::sim;

Socket::~Socket() = default;

Network::~Network() = default;

bool Socket::write(const std::string &Bytes) {
  if (Ended || Destroyed)
    return false;
  auto PeerRef = Peer;
  K->submit(Latency, [PeerRef, Bytes] {
    if (auto P = PeerRef.lock())
      P->deliverData(Bytes);
  });
  return true;
}

void Socket::end() {
  if (Ended || Destroyed)
    return;
  Ended = true;
  auto PeerRef = Peer;
  K->submit(Latency, [PeerRef] {
    if (auto P = PeerRef.lock())
      P->deliverEnd();
  });
}

void Socket::destroy() {
  if (Destroyed)
    return;
  Destroyed = true;
  auto Self = weak_from_this();
  auto PeerRef = Peer;
  K->submit(Latency, [Self, PeerRef] {
    if (auto S = Self.lock())
      S->deliverClose();
    if (auto P = PeerRef.lock())
      P->deliverClose();
  });
}

void Socket::deliverData(const std::string &Bytes) {
  if (Destroyed)
    return;
  if (Data)
    Data(Bytes);
}

void Socket::deliverEnd() {
  if (Destroyed)
    return;
  if (End)
    End();
}

void Socket::deliverClose() {
  if (Close) {
    // Fire close exactly once per endpoint.
    EventHandler H = std::move(Close);
    Close = nullptr;
    Destroyed = true;
    H();
    return;
  }
  Destroyed = true;
}

bool Network::listenWithBacklog(int Port, AcceptHandler OnAccept,
                                int Backlog) {
  (void)Backlog; // The simulated network has no accept queue to overflow.
  if (Listeners.count(Port))
    return false;
  Listeners.emplace(Port, std::move(OnAccept));
  return true;
}

void Network::closePort(int Port) { Listeners.erase(Port); }

bool Network::connect(int Port, ConnectHandler OnConnect) {
  auto It = Listeners.find(Port);
  if (It == Listeners.end())
    return false;

  auto ServerSide = std::make_shared<Socket>();
  auto ClientSide = std::make_shared<Socket>();
  ServerSide->K = &K;
  ClientSide->K = &K;
  ServerSide->Latency = LatencyUs;
  ClientSide->Latency = LatencyUs;
  ServerSide->Peer = ClientSide;
  ClientSide->Peer = ServerSide;

  AcceptHandler &Accept = It->second;
  K.submit(LatencyUs, [Accept, ServerSide, OnConnect, ClientSide] {
    // Accept on the server first (as the SYN arrives), then complete the
    // client's connect.
    Accept(ServerSide);
    if (OnConnect)
      OnConnect(ClientSide);
  });
  return true;
}
