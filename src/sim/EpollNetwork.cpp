//===- EpollNetwork.cpp - Real TCP sockets behind the sim interface -----------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#ifdef __linux__

#include "sim/EpollNetwork.h"

#include "sim/Fault.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

using namespace asyncg;
using namespace asyncg::sim;

//===----------------------------------------------------------------------===//
// EpollSocket
//===----------------------------------------------------------------------===//

EpollSocket::EpollSocket(EpollKernel &EK, int Fd,
                         std::unique_ptr<WireCodec> Codec)
    : EK(EK), Fd(Fd), Codec(std::move(Codec)) {}

EpollSocket::~EpollSocket() {
  if (Fd >= 0) {
    EK.unwatchFd(Fd);
    ::close(Fd);
    EK.noteSyscalls(1);
  }
}

void EpollSocket::arm() {
  std::weak_ptr<EpollSocket> Self =
      std::static_pointer_cast<EpollSocket>(shared_from_this());
  if (EK.watchFd(Fd, EPOLLIN, [Self](uint32_t Events) {
        if (auto S = Self.lock())
          S->onEvents(Events);
      }))
    Interest = EPOLLIN;
}

bool EpollSocket::write(const std::string &Msg) {
  if (Ended || Destroyed || Fd < 0)
    return false;
  Codec->encode(Msg, Out);
  return flushOut();
}

void EpollSocket::end() {
  if (Ended || Destroyed || Fd < 0)
    return;
  Ended = true;
  if (pendingOutBytes() > 0) {
    EndAfterFlush = true;
    return;
  }
  ::shutdown(Fd, SHUT_WR);
  EK.noteSyscalls(1);
  if (SawEof)
    teardown(/*Reset=*/false);
}

void EpollSocket::destroy() {
  if (Destroyed)
    return;
  Destroyed = true;
  teardown(/*Reset=*/true);
  // Deliver close asynchronously, like the sim's latency-delayed delivery:
  // the caller's tick finishes before the close callback is scheduled.
  std::weak_ptr<EpollSocket> Self =
      std::static_pointer_cast<EpollSocket>(shared_from_this());
  EK.submit(0, [Self] {
    if (auto S = Self.lock())
      S->deliverClose();
  });
}

void EpollSocket::onEvents(uint32_t Events) {
  if (Fd < 0)
    return;
  if (Events & EPOLLOUT) {
    if (!flushOut())
      return;
  }
  if (Events & (EPOLLIN | EPOLLHUP | EPOLLERR))
    onReadable();
}

void EpollSocket::onReadable() {
  char Buf[64 * 1024];
  std::weak_ptr<EpollSocket> Self =
      std::static_pointer_cast<EpollSocket>(shared_from_this());
  int EintrSpins = 0;
  for (;;) {
    ssize_t N;
    if (Faults && Faults->shouldInject(FaultKind::Reset)) {
      if (RS)
        ++RS->ResetsInjected;
      N = -1;
      errno = ECONNRESET;
    } else if (Faults && Faults->shouldInject(FaultKind::Eintr)) {
      N = -1;
      errno = EINTR;
    } else if (Faults && Faults->shouldInject(FaultKind::Eagain)) {
      // Spurious not-ready. Safe under level-triggered epoll: if bytes
      // really are pending the next sweep reports the fd readable again.
      N = -1;
      errno = EAGAIN;
    } else {
      N = ::recv(Fd, Buf, sizeof(Buf), 0);
      EK.noteSyscalls(1);
    }
    if (N > 0) {
      std::vector<std::string> Msgs;
      if (!Codec->ingest(Buf, static_cast<size_t>(N), Msgs)) {
        failConnection();
        return;
      }
      // Deliver each message as its own kernel completion: the simulated
      // network delivers one message per latency-delayed op, so per-message
      // submits keep the tick structure (and with it detector behavior and
      // the Async Graph shape) identical across backends.
      for (std::string &M : Msgs)
        EK.submit(0, [Self, Msg = std::move(M)] {
          if (auto S = Self.lock())
            S->deliverData(Msg);
        });
      continue;
    }
    if (N == 0) {
      // Peer FIN. Deliver end once (after any queued data messages); the
      // fd stays open for our outgoing direction — the sim peer can still
      // receive our writes after it end()s — and is released once our own
      // end() has flushed. No close event for this path (sim parity).
      if (!SawEof) {
        SawEof = true;
        EK.submit(0, [Self] {
          if (auto S = Self.lock())
            S->deliverEnd();
        });
      }
      if (Ended && Fd >= 0 && pendingOutBytes() == 0)
        teardown(/*Reset=*/false);
      else
        updateInterest(); // drop EPOLLIN: a FIN-ed fd stays readable forever
      return;
    }
    if (errno == EINTR) {
      // Interrupted before any bytes moved: retry immediately, bounded so
      // a signal storm can't wedge the loop — past the cap the pending
      // bytes wait for the next level-triggered sweep. Returning on the
      // first EINTR (the old behavior) cost a wakeup per signal.
      if (RS)
        ++RS->EintrRetries;
      if (++EintrSpins > 64)
        return;
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    // ECONNRESET and friends: the sim analogue is the peer destroying the
    // pair — a close event.
    if (RS)
      ++RS->DrainedConns;
    failConnection();
    return;
  }
}

bool EpollSocket::flushOut() {
  int EintrSpins = 0;
  while (OutOff < Out.size()) {
    size_t Want = Out.size() - OutOff;
    if (Faults && Want >= 2 && Faults->shouldInject(FaultKind::ShortWrite)) {
      // Clamp to a strict prefix: the loop below naturally re-sends the
      // rest, which is exactly the path a short kernel write exercises.
      Want = Faults->shortenWrite(Want);
      if (RS)
        ++RS->ShortWrites;
    }
    ssize_t N;
    if (Faults && Faults->shouldInject(FaultKind::Enobufs)) {
      N = -1;
      errno = ENOBUFS;
    } else if (Faults && Faults->shouldInject(FaultKind::Eintr)) {
      N = -1;
      errno = EINTR;
    } else {
      N = ::send(Fd, Out.data() + OutOff, Want, MSG_NOSIGNAL);
      EK.noteSyscalls(1);
    }
    if (N > 0) {
      OutOff += static_cast<size_t>(N);
      EnobufsStreak = 0;
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      updateInterest();
      return true;
    }
    if (N < 0 && errno == EINTR) {
      if (RS)
        ++RS->EintrRetries;
      if (++EintrSpins > 64) {
        updateInterest(); // EPOLLOUT re-delivers; don't wedge the loop
        return true;
      }
      continue;
    }
    if (N < 0 && (errno == ENOBUFS || errno == ENOMEM)) {
      // Transient buffer exhaustion: keep the bytes queued and retry on a
      // jittered exponential backoff timer (EPOLLOUT alone would fire
      // immediately — the socket is writable, the kernel just has no
      // buffers). Bounded: a persistent streak drains the connection.
      if (RS)
        ++RS->EnobufsRetries;
      if (++EnobufsStreak > 10) {
        if (RS)
          ++RS->DrainedConns;
        failConnection();
        return false;
      }
      if (!FlushRetryArmed) {
        FlushRetryArmed = true;
        SimTime Backoff = SimTime(100)
                          << (EnobufsStreak < 6 ? EnobufsStreak : 6);
        std::weak_ptr<EpollSocket> Self =
            std::static_pointer_cast<EpollSocket>(shared_from_this());
        EK.submit(Backoff, [Self] {
          if (auto S = Self.lock()) {
            S->FlushRetryArmed = false;
            if (S->Fd >= 0 && S->pendingOutBytes() > 0)
              S->flushOut();
          }
        });
      }
      updateInterest();
      return true;
    }
    if (RS)
      ++RS->DrainedConns;
    failConnection();
    return false;
  }
  Out.clear();
  OutOff = 0;
  updateInterest();
  if (EndAfterFlush) {
    EndAfterFlush = false;
    ::shutdown(Fd, SHUT_WR);
    EK.noteSyscalls(1);
    if (SawEof)
      teardown(/*Reset=*/false);
  }
  return true;
}

void EpollSocket::updateInterest() {
  if (Fd < 0)
    return;
  uint32_t Want = (SawEof ? 0u : static_cast<uint32_t>(EPOLLIN)) |
                  (OutOff < Out.size() ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  if (Want == Interest)
    return;
  if (Want == 0) {
    EK.unwatchFd(Fd);
  } else if (Interest == 0) {
    std::weak_ptr<EpollSocket> Self =
        std::static_pointer_cast<EpollSocket>(shared_from_this());
    if (!EK.watchFd(Fd, Want, [Self](uint32_t Events) {
          if (auto S = Self.lock())
            S->onEvents(Events);
        }))
      return;
  } else {
    EK.modifyFd(Fd, Want);
  }
  Interest = Want;
}

void EpollSocket::teardown(bool Reset) {
  if (Fd < 0)
    return;
  if (Reset) {
    // Abortive close: RST the peer, like sim destroy() closing both ends.
    linger L{1, 0};
    setsockopt(Fd, SOL_SOCKET, SO_LINGER, &L, sizeof(L));
    EK.noteSyscalls(1);
  }
  EK.unwatchFd(Fd);
  ::close(Fd);
  EK.noteSyscalls(1);
  Fd = -1;
  Interest = 0;
  Out.clear();
  OutOff = 0;
}

void EpollSocket::failConnection() {
  bool WasDestroyed = Destroyed;
  teardown(false);
  if (WasDestroyed)
    return;
  // Async like the sim's latency-delayed close delivery: the tick that
  // noticed the failure finishes before the close callback runs.
  std::weak_ptr<EpollSocket> Self =
      std::static_pointer_cast<EpollSocket>(shared_from_this());
  EK.submit(0, [Self] {
    if (auto S = Self.lock())
      S->deliverClose();
  });
}

//===----------------------------------------------------------------------===//
// EpollNetwork
//===----------------------------------------------------------------------===//

namespace {

int makeNonBlockingSocket() {
  return ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

sockaddr_in loopbackAddr(int Port) {
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return Addr;
}

} // namespace

EpollNetwork::EpollNetwork(EpollKernel &EK, SimTime LatencyUs, WireFormat Wire,
                           int DefaultBacklog)
    : Network(EK, LatencyUs), EK(EK), Wire(Wire),
      DefaultBacklog(DefaultBacklog) {}

EpollNetwork::~EpollNetwork() {
  // Quiet teardown: no close events. The runtime is being destroyed —
  // delivering events now would run node-layer callbacks into it.
  for (auto &[Port, L] : Ports) {
    (void)Port;
    EK.unwatchFd(L.Fd);
    ::close(L.Fd);
  }
  Ports.clear();
  for (auto &WeakS : Sockets)
    if (auto S = WeakS.lock())
      S->teardown(/*Reset=*/true);
  Sockets.clear();
}

bool EpollNetwork::listenWithBacklog(int Port, AcceptHandler OnAccept,
                                     int Backlog) {
  if (Ports.count(Port))
    return false;
  int Fd = makeNonBlockingSocket();
  if (Fd < 0)
    return false;
  int One = 1;
  setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  // SO_REUSEPORT: cluster shards all bind this port; the Linux kernel
  // accept-balances across the listening fds (one per loop).
  setsockopt(Fd, SOL_SOCKET, SO_REUSEPORT, &One, sizeof(One));
  sockaddr_in Addr = loopbackAddr(Port);
  EK.noteSyscalls(5); // socket + 2x setsockopt + bind + listen
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, Backlog > 0 ? Backlog : DefaultBacklog) != 0) {
    ::close(Fd);
    return false;
  }
  AcceptHandler Handler = std::move(OnAccept);
  if (!EK.watchFd(Fd, EPOLLIN, [this, Fd, Handler](uint32_t) {
        onAcceptable(Fd, Handler);
      })) {
    ::close(Fd);
    return false;
  }
  Ports.emplace(Port, Listener{Fd, Handler});
  return true;
}

void EpollNetwork::onAcceptable(int ListenFd, const AcceptHandler &OnAccept) {
  int EintrSpins = 0;
  for (;;) {
    int Fd;
    if (Faults && Faults->shouldInject(FaultKind::Emfile)) {
      Fd = -1;
      errno = EMFILE;
    } else {
      Fd = ::accept4(ListenFd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
      EK.noteSyscalls(1);
    }
    if (Fd < 0) {
      if (errno == EINTR) {
        // Retry: connections are queued in the backlog; the old
        // return-on-EINTR deferred them a full sweep.
        ++RS->EintrRetries;
        if (++EintrSpins > 64)
          return;
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return;
      if (errno == ECONNABORTED)
        continue; // peer gave up while queued; the next one may be fine
      if (errno == EMFILE || errno == ENFILE) {
        pauseAccept(ListenFd);
        return;
      }
      return;
    }
    int One = 1;
    setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    EK.noteSyscalls(1);
    ++Accepted;
    auto Sock = adopt(Fd, /*ServerRole=*/true);
    if (OnAccept)
      OnAccept(Sock);
  }
}

void EpollNetwork::pauseAccept(int ListenFd) {
  auto It = Ports.begin();
  for (; It != Ports.end(); ++It)
    if (It->second.Fd == ListenFd)
      break;
  if (It == Ports.end() || It->second.Paused)
    return;
  It->second.Paused = true;
  ++RS->AcceptPauses;
  EK.unwatchFd(ListenFd);
  EK.submit(AcceptPauseUs, [this, ListenFd] { resumeAccept(ListenFd); });
}

void EpollNetwork::resumeAccept(int ListenFd) {
  auto It = Ports.begin();
  for (; It != Ports.end(); ++It)
    if (It->second.Fd == ListenFd)
      break;
  if (It == Ports.end() || !It->second.Paused)
    return; // port was closed (or re-armed) while the pause timer ran
  It->second.Paused = false;
  AcceptHandler Handler = It->second.OnAccept;
  EK.watchFd(ListenFd, EPOLLIN, [this, ListenFd, Handler](uint32_t) {
    onAcceptable(ListenFd, Handler);
  });
}

std::shared_ptr<EpollSocket> EpollNetwork::adopt(int Fd, bool ServerRole) {
  std::shared_ptr<EpollSocket> Sock(
      new EpollSocket(EK, Fd, makeWireCodec(Wire, ServerRole)));
  Sock->Faults = Faults;
  Sock->RS = RS;
  Sock->arm();
  // Compact expired entries so long-serving processes stay bounded.
  size_t W = 0;
  for (size_t I = 0; I != Sockets.size(); ++I)
    if (!Sockets[I].expired())
      Sockets[W++] = std::move(Sockets[I]);
  Sockets.resize(W);
  Sockets.push_back(Sock);
  return Sock;
}

void EpollNetwork::closePort(int Port) {
  auto It = Ports.find(Port);
  if (It == Ports.end())
    return;
  EK.unwatchFd(It->second.Fd);
  ::close(It->second.Fd);
  Ports.erase(It);
}

bool EpollNetwork::isListening(int Port) const {
  return Ports.count(Port) != 0;
}

bool EpollNetwork::connect(int Port, ConnectHandler OnConnect) {
  int Fd = makeNonBlockingSocket();
  if (Fd < 0)
    return false;
  int One = 1;
  setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  sockaddr_in Addr = loopbackAddr(Port);
  EK.noteSyscalls(3); // socket + setsockopt + connect
  int Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  if (Rc != 0 && errno != EINPROGRESS) {
    ::close(Fd);
    return false;
  }
  auto Sock = adopt(Fd, /*ServerRole=*/false);
  // Completion is level-triggered writability. Replace the normal data
  // watch with a connect-completion watch that pins the socket strongly
  // (nothing else holds it until OnConnect hands it to the caller); the
  // pin is released when the watch is replaced or torn down.
  std::shared_ptr<EpollSocket> Pin = Sock;
  ConnectHandler Done = std::move(OnConnect);
  EK.unwatchFd(Fd);
  Pin->Interest = 0;
  EK.watchFd(Fd, EPOLLOUT, [Pin, Done](uint32_t Events) {
    EpollSocket *S = Pin.get();
    if (S->Fd < 0)
      return;
    int Err = 0;
    socklen_t Len = sizeof(Err);
    getsockopt(S->Fd, SOL_SOCKET, SO_ERROR, &Err, &Len);
    S->EK.noteSyscalls(1);
    if (Err != 0 || (Events & (EPOLLERR | EPOLLHUP))) {
      // Refused: the op vanishes and the socket delivers close — real
      // backends cannot report refusal synchronously like the sim does.
      S->failConnection();
      return;
    }
    // Established: swap to the normal data-driven (weak) handler. Safe
    // while executing: the kernel's dispatch shared_ptr keeps this
    // closure's Watch alive for the duration of the call.
    S->EK.unwatchFd(S->Fd);
    S->arm();
    if (Done)
      Done(Pin);
  });
  return true;
}

void EpollNetwork::teardownAll() {
  for (auto &[Port, L] : Ports) {
    (void)Port;
    EK.unwatchFd(L.Fd);
    ::close(L.Fd);
  }
  Ports.clear();
  for (auto &WeakS : Sockets)
    if (auto S = WeakS.lock())
      if (!S->Destroyed && S->Fd >= 0) {
        S->teardown(/*Reset=*/true);
        S->deliverClose();
      }
  Sockets.clear();
}

#endif // __linux__
