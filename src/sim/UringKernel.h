//===- UringKernel.h - Raw io_uring completion kernel backend ---*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The completion-based real-traffic kernel: a raw Linux io_uring (direct
/// io_uring_setup/io_uring_enter + mmap'd SQ/CQ rings — no liburing
/// dependency) behind the same Kernel surface jsrt::Runtime pumps and the
/// same cross-thread wake surface RealKernel defines.
///
/// The syscall economics this backend exists to demonstrate:
///
///  - Socket operations are *staged*: stageRecv/stageSend/stageAccept write
///    an SQE into the mmap'd SQ ring — user memory, zero syscalls. All
///    SQEs staged during one loop turn flush through a single
///    io_uring_enter, either the non-blocking sweep at the top of takeDue()
///    or the blocking wait in waitUntil() (submission and sleep share one
///    syscall there).
///  - Completions are reaped straight from the mmap'd CQ ring — also zero
///    syscalls (KernelStats::ZeroSyscallReaps counts sweeps served this
///    way).
///  - Accept is multishot: one SQE yields a CQE per incoming connection
///    until cancelled, where epoll pays accept4-until-EAGAIN per readiness.
///  - The deadline timer is an IORING_TIMEOUT_ABS SQE instead of a
///    timerfd_settime + epoll_wait pair.
///  - Receive uses a provided-buffer ring (IORING_OP_PROVIDE_BUFFERS) when
///    the kernel has it, so recv SQEs carry no buffer and the kernel picks
///    one at completion time; falls back to classic per-op owned buffers
///    when the probe says the op is missing.
///  - Cross-thread wakes arrive through a multishot POLL_ADD on the
///    inherited eventfd.
///
/// Ownership across cancellation: every in-flight operation lives in a
/// PendingIo entry owned by the kernel's table, including any buffer the
/// kernel may still write into. Socket teardown stages ASYNC_CANCEL and
/// marks the entry cancelled, but the entry (and its buffer) survives until
/// the CQE — -ECANCELED or a late real result — arrives, so io_uring never
/// completes into freed memory. The destructor cancels everything still in
/// the table and drains the ring with a bounded wait before unmapping.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_URINGKERNEL_H
#define ASYNCG_SIM_URINGKERNEL_H

#ifdef __linux__

#include "sim/RealKernel.h"

#include <netinet/in.h>

#include <memory>
#include <string>
#include <unordered_map>

struct io_uring_sqe;
struct io_uring_cqe;

namespace asyncg {
namespace sim {

/// What the running kernel offers, from a one-shot io_uring_setup +
/// IORING_REGISTER_PROBE probe (cached per process).
struct UringCaps {
  /// io_uring usable with every op the backend requires (accept, recv,
  /// send, connect, poll, timeout(+remove), async-cancel).
  bool Available = false;
  /// IORING_OP_PROVIDE_BUFFERS supported (else classic owned-buffer recv).
  bool ProvideBuffers = false;
  /// One-line human-readable result, shown by `--kernel auto` and probe
  /// error messages.
  std::string Reason;
};

/// Probes io_uring availability on this host. Cheap after the first call
/// (the result is cached — kernel capabilities don't change mid-process).
UringCaps probeUringCaps();

/// The io_uring-backed kernel. Loop-thread only, except the RealKernel
/// cross-thread surface (submitExternal/wakeup/requestStop).
class UringKernel final : public RealKernel {
public:
  /// Invoked once per accepted connection with the new fd (>= 0). Errors
  /// never reach the handler: transient ones re-arm the accept internally.
  using AcceptFn = std::function<void(int NewFd)>;
  /// Invoked with recv result: bytes received (Data valid only for the
  /// duration of the call), 0 on peer FIN, -errno on failure.
  using RecvFn = std::function<void(int Res, const char *Data)>;
  /// Invoked with bytes sent or -errno, handing the chunk's ownership back
  /// so a partial send can be re-staged by offset without copying.
  using SendFn = std::function<void(int Res, std::string Chunk)>;
  /// Invoked with 0 on established, -errno on failure.
  using ConnectFn = std::function<void(int Res)>;

  explicit UringKernel(Clock &C);
  ~UringKernel() override;

  /// False when ring setup/mmap failed (check kernelBackendAvailable /
  /// probeUringCaps first to get the reason).
  bool valid() const override { return RingFd >= 0 && EvFd >= 0 && Armed; }

  /// \name Kernel surface (timed ops inherit the base deadline table)
  /// @{
  bool hasPending() const override;
  size_t pendingCount() const override;
  SimTime nextDeadline() const override;
  std::vector<std::function<void()>> takeDue() override;
  bool waitUntil(SimTime Next) override;
  /// @}

  /// \name Staged I/O (used by UringNetwork; SQE writes, no syscalls)
  /// @{

  /// Stages a (multishot when supported) accept on \p ListenFd. One token;
  /// many completions. Cancel with cancelIo when closing the listener.
  uint64_t stageAccept(int ListenFd, AcceptFn H);

  /// Stages one receive on \p Fd. One completion, then the entry is gone —
  /// re-stage from the handler to keep reading.
  uint64_t stageRecv(int Fd, RecvFn H);

  /// Stages one send of \p Chunk starting at \p Off. The kernel owns the
  /// chunk until completion (buffer-stability across cancellation).
  uint64_t stageSend(int Fd, std::string Chunk, size_t Off, SendFn H);

  /// Stages a connect to \p Addr on \p Fd.
  uint64_t stageConnect(int Fd, const sockaddr_in &Addr, ConnectFn H);

  /// Cancels an in-flight operation: its handler will never fire. The
  /// entry itself (owning any kernel-visible buffer) survives until the
  /// CQE arrives. Safe on already-completed tokens (no-op).
  void cancelIo(uint64_t Token);

  /// True when receive runs over the provided-buffer pool.
  bool usesProvidedBuffers() const { return UseBufRing; }

  /// In-flight socket operations (accept/recv/send/connect) — the uring
  /// analogue of EpollKernel::watchedFds for loop-aliveness.
  size_t inflightOps() const { return IoOps; }
  /// @}

private:
  enum class IoKind : uint8_t {
    Accept,
    Recv,
    Send,
    Connect,
    EvPoll,
    Timeout,
    TimeoutRemove,
    Cancel,
    ProvideBuf,
  };

  struct PendingIo {
    uint64_t Token = 0;
    IoKind Kind = IoKind::Cancel;
    int Fd = -1;
    bool Cancelled = false;
    /// Send chunk or classic-recv buffer; must outlive the CQE.
    std::string Buf;
    size_t Off = 0;
    /// TIMEOUT needs a stable timespec; CONNECT a stable sockaddr.
    /// (Layout-compatible with struct __kernel_timespec: two 64-bit
    /// fields.)
    struct KTimespec {
      int64_t tv_sec = 0;
      int64_t tv_nsec = 0;
    } Ts;
    sockaddr_in Addr{};
    AcceptFn OnAccept;
    RecvFn OnRecv;
    SendFn OnSend;
    ConnectFn OnConnect;
  };

  /// Grabs the next SQE slot, flushing the ring first if it is full.
  io_uring_sqe *getSqe();
  /// Creates a table entry and returns it (token already assigned).
  PendingIo *newIo(IoKind Kind, int Fd);
  void writeAccept(PendingIo &Io, bool Multishot);
  void writeRecv(PendingIo &Io);
  void writeEvPoll();
  /// io_uring_enter: submits everything staged; waits for \p MinComplete.
  /// Returns completions reaped after the enter.
  unsigned enterAndReap(unsigned MinComplete);
  /// Reaps the CQ ring into Completions. Pure userspace.
  unsigned reapCqes();
  void handleCqe(const io_uring_cqe &Cqe);
  void finishIo(PendingIo *Io);
  /// Stages a single-buffer re-provide after a completion consumed \p Bid.
  void provideBuffer(unsigned Bid);
  /// Arms/re-arms the deadline TIMEOUT SQE when \p Next differs from the
  /// currently armed deadline.
  void armDeadline(SimTime Next);
  bool hasStagedWork() const;
  /// Non-blocking sweep: free CQ reap, then flush staged SQEs if any.
  void sweep();

  int RingFd = -1;
  bool Armed = false; // ring mmapped + eventfd poll staged

  /// SQ ring (mmap'd).
  void *SqRing = nullptr;
  size_t SqRingSz = 0;
  unsigned *SqHead = nullptr;
  unsigned *SqTail = nullptr;
  unsigned SqMask = 0;
  unsigned SqEntries = 0;
  unsigned *SqArray = nullptr;
  io_uring_sqe *Sqes = nullptr;
  size_t SqesSz = 0;
  /// Local tail: staged but not yet published/submitted.
  unsigned SqTailLocal = 0;
  unsigned ToSubmit = 0;

  /// CQ ring (mmap'd; may alias SqRing under IORING_FEAT_SINGLE_MMAP).
  void *CqRing = nullptr;
  size_t CqRingSz = 0;
  bool SingleMmap = false;
  unsigned *CqHead = nullptr;
  unsigned *CqTail = nullptr;
  unsigned CqMask = 0;
  io_uring_cqe *Cqes = nullptr;

  uint64_t NextToken = 1;
  std::unordered_map<uint64_t, std::unique_ptr<PendingIo>> Table;
  /// In-flight accept/recv/send/connect entries (loop-aliveness).
  size_t IoOps = 0;

  /// Completion actions reaped but not yet handed to the loop's I/O phase.
  std::vector<std::function<void()>> Completions;

  /// Provided-buffer pool (group 0). Bid i lives at Pool[i * BufSize].
  bool UseBufRing = false;
  std::string Pool;
  static constexpr unsigned NumBufs = 32;
  static constexpr unsigned BufSize = 64 * 1024;

  /// Deadline timeout state: token of the armed TIMEOUT entry (0 = none)
  /// and the deadline it was armed for.
  uint64_t DeadlineToken = 0;
  SimTime DeadlineArmed = NoDeadline;

  /// Runtime feature fallbacks, flipped on -EINVAL from older kernels.
  bool MultishotAcceptOk = true;
  bool MultishotPollOk = true;

  /// Set by the destructor: stop re-arming the eventfd poll while draining.
  bool ShuttingDown = false;
};

} // namespace sim
} // namespace asyncg

#endif // __linux__
#endif // ASYNCG_SIM_URINGKERNEL_H
