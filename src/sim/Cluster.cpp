//===- Cluster.cpp - Shared kernel state for multi-loop clusters --------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/Cluster.h"

#include <cassert>

using namespace asyncg;
using namespace asyncg::sim;

ClusterKernel::ClusterKernel(uint32_t NumShards)
    : NumShards(NumShards), Queues(NumShards), Stats(NumShards),
      WakeHooks(NumShards) {
  assert(NumShards > 0 && "a cluster has at least one loop");
}

bool ClusterKernel::post(uint32_t ToShard, ClusterMessage M) {
  assert(ToShard < NumShards && M.From < NumShards && "shard out of range");
  std::function<void()> Wake;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Quiesced)
      return false;
    ++Stats[M.From].Posted;
    Queues[ToShard].push_back(std::move(M));
    Cv.notify_all();
    Wake = WakeHooks[ToShard];
  }
  if (Wake)
    Wake();
  return true;
}

void ClusterKernel::setWakeHook(uint32_t Shard, std::function<void()> Hook) {
  assert(Shard < NumShards && "shard out of range");
  std::lock_guard<std::mutex> Lock(Mu);
  WakeHooks[Shard] = std::move(Hook);
}

size_t ClusterKernel::drain(uint32_t Shard, std::vector<ClusterMessage> &Out) {
  assert(Shard < NumShards && "shard out of range");
  std::lock_guard<std::mutex> Lock(Mu);
  std::deque<ClusterMessage> &Q = Queues[Shard];
  size_t N = Q.size();
  for (ClusterMessage &M : Q)
    Out.push_back(std::move(M));
  Q.clear();
  Stats[Shard].Delivered += N;
  return N;
}

bool ClusterKernel::waitForWork(uint32_t Shard) {
  assert(Shard < NumShards && "shard out of range");
  std::unique_lock<std::mutex> Lock(Mu);
  // A delivery may have landed between the loop's pump and this park.
  if (!Queues[Shard].empty())
    return true;
  if (Quiesced)
    return false;

  ++IdleCount;
  if (IdleCount == NumShards) {
    // Possibly the last loop standing: if no delivery is in flight either,
    // nothing can ever create work again (posts only happen from non-idle
    // loops), so the cluster quiesces and everyone is released.
    bool AllEmpty = true;
    for (const std::deque<ClusterMessage> &Q : Queues)
      if (!Q.empty()) {
        AllEmpty = false;
        break;
      }
    if (AllEmpty) {
      Quiesced = true;
      Cv.notify_all();
      return false;
    }
  }

  Cv.wait(Lock, [&] { return !Queues[Shard].empty() || Quiesced; });
  if (Quiesced)
    return false;
  --IdleCount;
  return true;
}

bool ClusterKernel::quiesced() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Quiesced;
}

ClusterShardStats ClusterKernel::shardStats(uint32_t Shard) const {
  assert(Shard < NumShards && "shard out of range");
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats[Shard];
}
