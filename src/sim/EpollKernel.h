//===- EpollKernel.h - Real-traffic epoll kernel backend --------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The readiness-based real-traffic kernel: Linux epoll + timerfd + eventfd
/// behind the same submit/cancel/poll/nextDeadline surface jsrt::Runtime
/// pumps. Timed operations reuse the base class's deadline table — the
/// difference is that the clock tracks the wall (CLOCK_MONOTONIC
/// microseconds since kernel construction, via RealKernel) instead of
/// being advanced virtually, so deadlines are real. I/O readiness on
/// watched fds is collected from epoll (level triggered) and handed to the
/// loop's I/O phase as completion actions, the exact slot where the
/// simulated kernel's latency-delayed deliveries run.
///
/// waitUntil() is where the loop "blocks in poll": the next timer/op
/// deadline arms the timerfd and the thread sleeps in epoll_wait until the
/// deadline, fd readiness, or an eventfd wakeup from another thread
/// (submitExternal — the cluster harness's shutdown path, and the cluster
/// port's cross-loop wake).
///
/// Loop semantics, instrumentation hooks, and the async pipeline are
/// untouched: everything above the Kernel interface behaves identically on
/// all backends (the StarlingMonkey swappable host-apis pattern). The
/// completion-based sibling is UringKernel; the thread-safe wake/stop
/// surface both share lives on RealKernel.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_EPOLLKERNEL_H
#define ASYNCG_SIM_EPOLLKERNEL_H

#ifdef __linux__

#include "sim/RealKernel.h"

#include <memory>
#include <unordered_map>

namespace asyncg {
namespace sim {

/// The epoll-backed kernel. Loop-thread only, except the RealKernel
/// cross-thread surface (submitExternal/wakeup/requestStop).
class EpollKernel final : public RealKernel {
public:
  /// Handler invoked with the ready EPOLL* event mask. Runs in the loop's
  /// I/O phase (a kernel completion action).
  using FdHandler = std::function<void(uint32_t)>;

  explicit EpollKernel(Clock &C);
  ~EpollKernel() override;

  /// False when epoll/timerfd/eventfd creation failed at construction.
  bool valid() const override {
    return EpFd >= 0 && EvFd >= 0 && TimerFd >= 0;
  }

  /// \name Kernel surface (timed ops inherit the base deadline table)
  /// @{
  bool hasPending() const override;
  size_t pendingCount() const override;
  SimTime nextDeadline() const override;
  std::vector<std::function<void()>> takeDue() override;
  bool waitUntil(SimTime Next) override;
  /// @}

  /// \name fd watching (used by EpollNetwork; level-triggered)
  /// @{

  /// Registers \p Fd for \p Events (EPOLLIN/EPOLLOUT). One handler per fd.
  bool watchFd(int Fd, uint32_t Events, FdHandler H);

  /// Changes the interest mask of a watched fd.
  bool modifyFd(int Fd, uint32_t Events);

  /// Unregisters \p Fd. Pending readiness for it is dropped.
  void unwatchFd(int Fd);

  size_t watchedFds() const { return Watches.size(); }
  /// @}

private:
  struct Watch {
    int Fd = -1;
    uint32_t Events = 0;
    FdHandler Handler;
  };

  /// One epoll_wait sweep with \p TimeoutMs (-1 = block), merging ready
  /// events into the Ready list. Returns the number of fd events seen.
  int pollOnce(int TimeoutMs);
  void armTimer(SimTime Next);
  bool hasStagedWork() const;

  int EpFd = -1;
  int TimerFd = -1;

  std::unordered_map<int, std::shared_ptr<Watch>> Watches;
  /// Readiness collected but not yet handed to the loop: (watch, events).
  std::vector<std::pair<std::weak_ptr<Watch>, uint32_t>> Ready;
};

} // namespace sim
} // namespace asyncg

#endif // __linux__
#endif // ASYNCG_SIM_EPOLLKERNEL_H
