//===- Random.h - Deterministic pseudo-random numbers -----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seedable SplitMix64 generator used by the workload driver and the
/// property-based tests. Deterministic across platforms, unlike
/// std::default_random_engine.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_RANDOM_H
#define ASYNCG_SIM_RANDOM_H

#include <cassert>
#include <cstdint>

namespace asyncg {
namespace sim {

/// SplitMix64: tiny, fast, and statistically adequate for workload mixing.
class Random {
public:
  explicit Random(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  uint64_t nextInt(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + next() % (Hi - Lo + 1);
  }

  /// Bernoulli trial with probability \p P.
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

  /// Picks an index proportionally to Weights (any range of doubles).
  template <typename Container> size_t pickWeighted(const Container &Weights) {
    double Total = 0;
    size_t Count = 0;
    for (double W : Weights) {
      Total += W;
      ++Count;
    }
    assert(Total > 0 && "weights must be positive");
    double X = nextDouble() * Total;
    size_t I = 0;
    for (double W : Weights) {
      if (X < W)
        return I;
      X -= W;
      ++I;
    }
    return Count - 1;
  }

private:
  uint64_t State;
};

} // namespace sim
} // namespace asyncg

#endif // ASYNCG_SIM_RANDOM_H
