//===- Fault.h - Deterministic fault injection ------------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic fault injection for the kernel/network stack. The
/// paper's monitor must be always-on in production, which means every layer
/// above the OS has to survive the failures production traffic actually
/// produces: interrupted syscalls, fd exhaustion, short writes, peer
/// resets, scheduling jitter. This header provides the machinery to
/// *manufacture* those failures on demand, reproducibly:
///
/// - FaultSpec: a parsed `--fault-spec kind:rate,...` mix. Rates are
///   per-decision-point probabilities in [0,1].
/// - FaultInjector: a SplitMix64-seeded decision engine. Every decision
///   point draws exactly one value, so the full fault schedule is a pure
///   function of (seed, decision index) — the same seed replays the
///   identical schedule, which scheduleDigest() makes checkable.
/// - FaultKernel: a decorator over any sim::Kernel (simulated or real
///   backend) injecting completion-deadline jitter and spurious wakeups
///   behind the existing virtual surface.
///
/// Syscall-level faults (EINTR/EAGAIN/EMFILE/ENOBUFS/short write/reset)
/// are injected by the network backends themselves: EpollNetwork consults
/// an installed FaultInjector at its accept/recv/send wrap points, so the
/// hardened retry paths above are exercised with real errno semantics.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_FAULT_H
#define ASYNCG_SIM_FAULT_H

#include "sim/Kernel.h"
#include "sim/Random.h"

#include <array>
#include <cstdint>
#include <memory>
#include <string>

namespace asyncg {
namespace sim {

/// The injectable fault classes. Each maps to one decision point kind in
/// the stack; see DESIGN.md §5i for where each fires and what the hardened
/// layer above is expected to do.
enum class FaultKind : uint8_t {
  Eintr = 0,   ///< Interrupted syscall (recv/send/wait return EINTR).
  Eagain,      ///< Spurious not-ready (recv returns EAGAIN).
  Emfile,      ///< accept4 fails with EMFILE (fd exhaustion).
  Enobufs,     ///< send fails with ENOBUFS (transient buffer exhaustion).
  ShortWrite,  ///< send is clamped to a strict prefix of the buffer.
  Reset,       ///< Connection fails with ECONNRESET (peer reset).
  Jitter,      ///< Completion deadlines are delayed by a random amount.
};

constexpr size_t NumFaultKinds = 7;

/// Stable lowercase name for flags and reports ("eintr", "shortwrite", ...).
const char *faultKindName(FaultKind K);

/// A parsed fault mix: per-kind injection probabilities.
struct FaultSpec {
  std::array<double, NumFaultKinds> Rate = {};
  /// Amplitude of deadline jitter, drawn uniformly in [1, MaxJitterUs].
  uint32_t MaxJitterUs = 500;

  double rate(FaultKind K) const { return Rate[static_cast<size_t>(K)]; }
  bool any() const {
    for (double R : Rate)
      if (R > 0)
        return true;
    return false;
  }

  /// The default mix used by bench/fault_soak and `--fault-spec default`:
  /// every kind enabled at rates a loaded server plausibly sees.
  static FaultSpec defaultMix();

  /// Parses "kind:rate,kind:rate,..." (or the single token "default").
  /// Unknown kinds and rates outside [0,1] fail with a message in \p Err.
  static bool parse(const std::string &Text, FaultSpec &Out,
                    std::string *Err = nullptr);

  /// Canonical textual form (parseable back); "" when no rates are set.
  std::string str() const;
};

/// Counters for the hardened error paths (and the faults injected into
/// them). Shared between a real network backend and its sockets so they
/// survive individual connection teardown; the harness folds them into
/// reports. Defined here (not in the Linux-only backend headers) so
/// cross-platform result structs can embed it.
struct NetRecoveryStats {
  uint64_t EintrRetries = 0;   ///< EINTR results retried in place.
  uint64_t AcceptPauses = 0;   ///< EMFILE/ENFILE accept pauses taken.
  uint64_t EnobufsRetries = 0; ///< ENOBUFS sends re-scheduled with backoff.
  uint64_t ShortWrites = 0;    ///< Injected short writes (clamped sends).
  uint64_t ResetsInjected = 0; ///< Injected peer resets.
  uint64_t DrainedConns = 0;   ///< Connections drained via failConnection.

  void merge(const NetRecoveryStats &O) {
    EintrRetries += O.EintrRetries;
    AcceptPauses += O.AcceptPauses;
    EnobufsRetries += O.EnobufsRetries;
    ShortWrites += O.ShortWrites;
    ResetsInjected += O.ResetsInjected;
    DrainedConns += O.DrainedConns;
  }
};

/// The seeded decision engine. One instance per event-loop thread (each
/// harness shard derives its own seed from the base seed), so decision
/// order — and therefore the schedule — is deterministic per loop.
class FaultInjector {
public:
  FaultInjector(const FaultSpec &Spec, uint64_t Seed)
      : Spec(Spec), Rng(Seed), Seed(Seed) {}

  /// One decision point: true when a fault of kind \p K should fire now.
  /// Always draws exactly once so the schedule depends only on the seed
  /// and the decision index, never on which kinds are enabled.
  bool shouldInject(FaultKind K) {
    bool Fire = Rng.nextDouble() < Spec.rate(K);
    ++Decisions;
    if (Fire)
      ++Injected[static_cast<size_t>(K)];
    // FNV-1a chain over (kind, outcome): two runs with the same seed walk
    // the same digest; any divergence in the schedule shows immediately.
    Digest ^= (static_cast<uint64_t>(K) << 1 | (Fire ? 1 : 0)) + 0x9e37;
    Digest *= 0x100000001b3ULL;
    return Fire;
  }

  /// Jitter amount for an injected Jitter fault, in [1, MaxJitterUs].
  uint64_t jitterUs() {
    return Rng.nextInt(1, Spec.MaxJitterUs ? Spec.MaxJitterUs : 1);
  }

  /// Length an injected short write clamps \p N bytes to: a strict,
  /// non-empty prefix (so N must be >= 2 for the clamp to bite).
  size_t shortenWrite(size_t N) {
    if (N < 2)
      return N;
    return static_cast<size_t>(Rng.nextInt(1, N - 1));
  }

  uint64_t seed() const { return Seed; }
  const FaultSpec &spec() const { return Spec; }
  uint64_t decisions() const { return Decisions; }
  uint64_t injected(FaultKind K) const {
    return Injected[static_cast<size_t>(K)];
  }
  uint64_t totalInjected() const {
    uint64_t T = 0;
    for (uint64_t I : Injected)
      T += I;
    return T;
  }

  /// Digest of the full decision stream so far. Two runs with the same
  /// seed and workload must report identical digests — the reproducibility
  /// gate in bench/fault_soak.
  uint64_t scheduleDigest() const { return Digest; }

private:
  FaultSpec Spec;
  Random Rng;
  uint64_t Seed;
  uint64_t Decisions = 0;
  std::array<uint64_t, NumFaultKinds> Injected = {};
  uint64_t Digest = 0xcbf29ce484222325ULL;
};

/// Decorator injecting faults behind the Kernel virtual surface. Wraps any
/// backend (Sim, Epoll, Uring): submit() may delay completion deadlines
/// (Jitter), waitUntil() may wake spuriously (modeling an
/// EINTR-interrupted wait). Everything else forwards. The network layers
/// keep their concrete reference to the wrapped kernel, so delivery
/// submits bypass the decorator — jitter applies to loop-visible deadlines
/// only, which is what the hardening above must tolerate.
class FaultKernel : public Kernel {
public:
  FaultKernel(std::unique_ptr<Kernel> Inner, FaultInjector &Inj)
      : Kernel(Inner->clock()), Owned(std::move(Inner)), Inj(Inj) {}

  Kernel &inner() { return *Owned; }
  const Kernel &inner() const { return *Owned; }

  OpId submit(SimTime Delay, std::function<void()> Action) override {
    if (Inj.shouldInject(FaultKind::Jitter))
      Delay += Inj.jitterUs();
    return Owned->submit(Delay, std::move(Action));
  }
  bool cancel(OpId Id) override { return Owned->cancel(Id); }
  bool hasPending() const override { return Owned->hasPending(); }
  size_t pendingCount() const override { return Owned->pendingCount(); }
  SimTime nextDeadline() const override { return Owned->nextDeadline(); }
  std::vector<std::function<void()>> takeDue() override {
    return Owned->takeDue();
  }
  bool waitUntil(SimTime Next) override {
    // Spurious wake: wait a tiny slice instead of the full interval. The
    // loop observes an early return with nothing due — exactly what an
    // EINTR-interrupted epoll_wait produces. Never injected on an
    // unbounded wait (the loop would busy-spin on I/O that isn't there).
    if (Next != NoDeadline && Next > now() &&
        Inj.shouldInject(FaultKind::Eintr)) {
      SimTime Slice = now() + 1;
      return Owned->waitUntil(Slice < Next ? Slice : Next);
    }
    return Owned->waitUntil(Next);
  }
  bool isRealTime() const override { return Owned->isRealTime(); }
  KernelStats kernelStats() const override { return Owned->kernelStats(); }

private:
  std::unique_ptr<Kernel> Owned;
  FaultInjector &Inj;
};

} // namespace sim
} // namespace asyncg

#endif // ASYNCG_SIM_FAULT_H
