//===- UringNetwork.h - Real TCP sockets over io_uring ----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The io_uring network backend: the same 127.0.0.1 listeners,
/// SO_REUSEPORT cluster sharding, WireCodec framing, and event mapping as
/// EpollNetwork (see its header for the mapping table) — but every socket
/// operation is a staged SQE on the UringKernel instead of a readiness
/// watch plus a direct syscall. Listeners hold one multishot-accept SQE
/// that produces a completion per connection; sockets keep at most one
/// recv and one send in flight, re-staged from their completion handlers,
/// which preserves write ordering and the per-message delivery structure
/// (each decoded message is its own kernel completion, exactly like the
/// sim and epoll backends — so detector behavior and the Async Graph shape
/// stay backend-identical).
///
/// Teardown: sockets cancel their in-flight operations through
/// UringKernel::cancelIo, which guarantees the handlers never fire while
/// the kernel-owned entry (and any buffer io_uring may still write) lives
/// on until the CQE arrives.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SIM_URINGNETWORK_H
#define ASYNCG_SIM_URINGNETWORK_H

#ifdef __linux__

#include "sim/Network.h"
#include "sim/UringKernel.h"
#include "sim/WireCodec.h"

#include <map>
#include <memory>
#include <vector>

namespace asyncg {
namespace sim {

class UringNetwork;

/// A real TCP socket endpoint driven by io_uring completions. Created by
/// UringNetwork on accept/connect; never constructed directly.
class UringSocket final : public Socket {
public:
  ~UringSocket() override;

  bool write(const std::string &Msg) override;
  void end() override;
  void destroy() override;

  /// Bytes accepted by write() but not yet confirmed sent (accumulating
  /// buffer plus the unacknowledged part of the in-flight chunk).
  size_t pendingOutBytes() const { return Out.size() + InFlightOut; }

private:
  friend class UringNetwork;

  UringSocket(UringKernel &UK, int Fd, std::unique_ptr<WireCodec> Codec);

  /// Stages the (single) outstanding recv; must run after shared_from_this
  /// is valid.
  void armRecv();
  void onRecv(int Res, const char *Data);
  /// Moves the accumulating Out buffer into an in-flight send chunk if no
  /// send is outstanding.
  void pumpSend();
  void onSend(int Res, std::string Chunk);
  /// Cancels in-flight ops and releases the fd. \p Reset sends RST.
  void teardown(bool Reset);
  void failConnection();

  UringKernel &UK;
  int Fd = -1;
  std::unique_ptr<WireCodec> Codec;
  /// Bytes written but not yet handed to the kernel (one send in flight at
  /// a time preserves ordering; new writes accumulate here meanwhile).
  std::string Out;
  /// Unsent bytes of the in-flight chunk (the chunk itself is owned by the
  /// kernel's PendingIo entry until its CQE).
  size_t InFlightOut = 0;
  size_t ChunkOff = 0;
  uint64_t RecvToken = 0;
  uint64_t SendToken = 0;
  uint64_t ConnectToken = 0;
  bool EndAfterFlush = false;
  bool SawEof = false;
};

/// The io_uring-backed network. One instance per runtime, owned by it;
/// must be destroyed before its UringKernel (Runtime's member order
/// guarantees this) so staged cancellations land in a live ring.
class UringNetwork final : public Network {
public:
  UringNetwork(UringKernel &UK, SimTime LatencyUs, WireFormat Wire,
               int DefaultBacklog = 128);
  ~UringNetwork() override;

  bool listenWithBacklog(int Port, AcceptHandler OnAccept,
                         int Backlog) override;
  void closePort(int Port) override;
  bool isListening(int Port) const override;
  bool connect(int Port, ConnectHandler OnConnect) override;

  /// Force-releases every live socket (delivering close events) and every
  /// listener — the cluster harness's shutdown path.
  void teardownAll();

  /// Accepted-connection count (for stats/tests).
  uint64_t acceptedCount() const { return Accepted; }

private:
  struct Listener {
    int Fd = -1;
    uint64_t AcceptToken = 0;
    AcceptHandler OnAccept;
  };

  void onAccepted(int Port, int NewFd);
  std::shared_ptr<UringSocket> adopt(int Fd, bool ServerRole, bool Arm);

  UringKernel &UK;
  WireFormat Wire;
  int DefaultBacklog;
  std::map<int, Listener> Ports;
  std::vector<std::weak_ptr<UringSocket>> Sockets;
  uint64_t Accepted = 0;
};

} // namespace sim
} // namespace asyncg

#endif // __linux__
#endif // ASYNCG_SIM_URINGNETWORK_H
