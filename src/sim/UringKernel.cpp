//===- UringKernel.cpp - Raw io_uring completion kernel backend ---------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#ifdef __linux__

#include "sim/UringKernel.h"

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

// Flag macros that only newer kernel headers define. The values are ABI
// (uapi) constants; defining them locally lets the binary build against
// older headers and fall back at runtime when the running kernel rejects
// them with -EINVAL.
#ifndef IORING_ACCEPT_MULTISHOT
#define IORING_ACCEPT_MULTISHOT (1U << 0)
#endif
#ifndef IORING_POLL_ADD_MULTI
#define IORING_POLL_ADD_MULTI (1U << 0)
#endif
#ifndef IORING_CQE_F_BUFFER
#define IORING_CQE_F_BUFFER (1U << 0)
#endif
#ifndef IORING_CQE_F_MORE
#define IORING_CQE_F_MORE (1U << 1)
#endif
#ifndef IORING_CQE_BUFFER_SHIFT
#define IORING_CQE_BUFFER_SHIFT 16
#endif
#ifndef IORING_FEAT_SINGLE_MMAP
#define IORING_FEAT_SINGLE_MMAP (1U << 0)
#endif
#ifndef IOSQE_BUFFER_SELECT
#define IOSQE_BUFFER_SELECT (1U << 5)
#endif

using namespace asyncg;
using namespace asyncg::sim;

//===----------------------------------------------------------------------===//
// Raw syscall wrappers (no liburing)
//===----------------------------------------------------------------------===//

namespace {

int sysUringSetup(unsigned Entries, io_uring_params *P) {
  return static_cast<int>(syscall(__NR_io_uring_setup, Entries, P));
}

int sysUringEnter(int Fd, unsigned ToSubmit, unsigned MinComplete,
                  unsigned Flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, Fd, ToSubmit,
                                  MinComplete, Flags, nullptr, 0));
}

int sysUringRegister(int Fd, unsigned Op, void *Arg, unsigned NrArgs) {
  return static_cast<int>(syscall(__NR_io_uring_register, Fd, Op, Arg,
                                  NrArgs));
}

UringCaps probeNow() {
  UringCaps C;
  if (const char *Env = std::getenv("ASYNCG_DISABLE_URING"))
    if (*Env && std::strcmp(Env, "0") != 0) {
      C.Reason = "uring: disabled (ASYNCG_DISABLE_URING set)";
      return C;
    }
  io_uring_params P{};
  int Fd = sysUringSetup(4, &P);
  if (Fd < 0) {
    C.Reason = std::string("uring: unavailable (io_uring_setup failed: ") +
               std::strerror(errno) +
               " — seccomp/sysctl may forbid io_uring here)";
    return C;
  }
  // Which opcodes does the running kernel implement? IORING_REGISTER_PROBE
  // reports per-op support; kernels too old to have the register op are
  // also too old for the ops this backend needs.
  constexpr unsigned MaxOps = 256;
  std::vector<char> Buf(sizeof(io_uring_probe) +
                            MaxOps * sizeof(io_uring_probe_op),
                        0);
  auto *Probe = reinterpret_cast<io_uring_probe *>(Buf.data());
  if (sysUringRegister(Fd, IORING_REGISTER_PROBE, Probe, MaxOps) != 0) {
    ::close(Fd);
    C.Reason = "uring: unavailable (kernel predates IORING_REGISTER_PROBE)";
    return C;
  }
  ::close(Fd);
  auto Supported = [&](unsigned Op) {
    return Op <= Probe->last_op &&
           (Probe->ops[Op].flags & IO_URING_OP_SUPPORTED);
  };
  struct Req {
    unsigned Op;
    const char *Name;
  };
  const Req Required[] = {
      {IORING_OP_ACCEPT, "accept"},
      {IORING_OP_RECV, "recv"},
      {IORING_OP_SEND, "send"},
      {IORING_OP_CONNECT, "connect"},
      {IORING_OP_POLL_ADD, "poll"},
      {IORING_OP_TIMEOUT, "timeout"},
      {IORING_OP_TIMEOUT_REMOVE, "timeout-remove"},
      {IORING_OP_ASYNC_CANCEL, "async-cancel"},
  };
  for (const Req &R : Required)
    if (!Supported(R.Op)) {
      C.Reason = std::string("uring: unavailable (kernel lacks IORING_OP_") +
                 R.Name + ")";
      return C;
    }
  C.ProvideBuffers = Supported(IORING_OP_PROVIDE_BUFFERS);
  C.Available = true;
  C.Reason = C.ProvideBuffers
                 ? "uring: available (all ops probed, provided-buffer recv)"
                 : "uring: available (classic recv — kernel lacks "
                   "IORING_OP_PROVIDE_BUFFERS)";
  return C;
}

} // namespace

UringCaps asyncg::sim::probeUringCaps() {
  // Kernel capabilities don't change mid-process; probe once.
  static const UringCaps Cached = probeNow();
  return Cached;
}

//===----------------------------------------------------------------------===//
// Ring setup / teardown
//===----------------------------------------------------------------------===//

UringKernel::UringKernel(Clock &C) : RealKernel(C) {
  UringCaps Caps = probeUringCaps();
  if (!Caps.Available || EvFd < 0)
    return;

  io_uring_params P{};
  RingFd = sysUringSetup(256, &P);
  ++Stats.Syscalls;
  if (RingFd < 0)
    return;

  SqRingSz = P.sq_off.array + P.sq_entries * sizeof(unsigned);
  CqRingSz = P.cq_off.cqes + P.cq_entries * sizeof(io_uring_cqe);
  SingleMmap = (P.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (SingleMmap)
    SqRingSz = CqRingSz = std::max(SqRingSz, CqRingSz);

  SqRing = ::mmap(nullptr, SqRingSz, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_POPULATE, RingFd, IORING_OFF_SQ_RING);
  ++Stats.Syscalls;
  if (SqRing == MAP_FAILED) {
    SqRing = nullptr;
    return;
  }
  if (SingleMmap) {
    CqRing = SqRing;
  } else {
    CqRing = ::mmap(nullptr, CqRingSz, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, RingFd, IORING_OFF_CQ_RING);
    ++Stats.Syscalls;
    if (CqRing == MAP_FAILED) {
      CqRing = nullptr;
      return;
    }
  }
  SqesSz = P.sq_entries * sizeof(io_uring_sqe);
  void *SqesMap = ::mmap(nullptr, SqesSz, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, RingFd, IORING_OFF_SQES);
  ++Stats.Syscalls;
  if (SqesMap == MAP_FAILED)
    return;
  Sqes = static_cast<io_uring_sqe *>(SqesMap);

  auto *SqBase = static_cast<char *>(SqRing);
  SqHead = reinterpret_cast<unsigned *>(SqBase + P.sq_off.head);
  SqTail = reinterpret_cast<unsigned *>(SqBase + P.sq_off.tail);
  SqMask = *reinterpret_cast<unsigned *>(SqBase + P.sq_off.ring_mask);
  SqArray = reinterpret_cast<unsigned *>(SqBase + P.sq_off.array);
  SqEntries = P.sq_entries;
  SqTailLocal = *SqTail;
  // Identity map once: slot i of the SQ array always points at SQE i.
  for (unsigned I = 0; I != SqEntries; ++I)
    SqArray[I] = I;

  auto *CqBase = static_cast<char *>(CqRing);
  CqHead = reinterpret_cast<unsigned *>(CqBase + P.cq_off.head);
  CqTail = reinterpret_cast<unsigned *>(CqBase + P.cq_off.tail);
  CqMask = *reinterpret_cast<unsigned *>(CqBase + P.cq_off.ring_mask);
  Cqes = reinterpret_cast<io_uring_cqe *>(CqBase + P.cq_off.cqes);

  // Provided-buffer pool: recv SQEs carry no buffer; the kernel picks a
  // free one at completion time and reports its id in cqe->flags.
  if (Caps.ProvideBuffers) {
    Pool.assign(static_cast<size_t>(NumBufs) * BufSize, '\0');
    UseBufRing = true;
    PendingIo *Io = newIo(IoKind::ProvideBuf, -1);
    if (io_uring_sqe *S = getSqe()) {
      S->opcode = IORING_OP_PROVIDE_BUFFERS;
      S->fd = NumBufs;
      S->addr = reinterpret_cast<uint64_t>(Pool.data());
      S->len = BufSize;
      S->off = 0;
      S->buf_group = 0;
      S->user_data = Io->Token;
    }
    // Must know the verdict before the first stageRecv: a failed provide
    // (-EINVAL on a kernel that lies in the probe) flips UseBufRing off in
    // handleCqe and recvs fall back to owned buffers.
    enterAndReap(1);
  }

  writeEvPoll();
  Armed = true;
}

UringKernel::~UringKernel() {
  ShuttingDown = true;
  Completions.clear(); // never run; may capture `this`
  if (RingFd >= 0 && Armed) {
    // Cancel everything still in flight and drain the CQ so no kernel op
    // completes into memory we are about to free (send chunks, the
    // provided-buffer pool, timeout timespecs all live in Table entries
    // or members).
    armDeadline(NoDeadline);
    std::vector<uint64_t> Tokens;
    Tokens.reserve(Table.size());
    for (auto &[T, Io] : Table)
      if (!Io->Cancelled && Io->Kind != IoKind::Cancel &&
          Io->Kind != IoKind::TimeoutRemove && Io->Kind != IoKind::ProvideBuf)
        Tokens.push_back(T);
    for (uint64_t T : Tokens)
      cancelIo(T);
    // ProvideBuf/Cancel/TimeoutRemove entries complete on their own; every
    // cancelled op completes with -ECANCELED (or its late real result).
    for (int I = 0; I != 1024 && !Table.empty(); ++I) {
      enterAndReap(1);
      Completions.clear();
    }
    if (!Table.empty()) {
      // Pathological (a cancel that never completed): leak the entries and
      // the pool rather than free memory the kernel may still write into.
      for (auto &[T, Io] : Table) {
        (void)T;
        Io.release();
      }
      new std::string(std::move(Pool));
    }
  }
  if (Sqes)
    ::munmap(Sqes, SqesSz);
  if (CqRing && !SingleMmap)
    ::munmap(CqRing, CqRingSz);
  if (SqRing)
    ::munmap(SqRing, SqRingSz);
  if (RingFd >= 0)
    ::close(RingFd);
}

//===----------------------------------------------------------------------===//
// SQE staging
//===----------------------------------------------------------------------===//

io_uring_sqe *UringKernel::getSqe() {
  unsigned Head = __atomic_load_n(SqHead, __ATOMIC_ACQUIRE);
  if (SqTailLocal - Head >= SqEntries) {
    // Ring full mid-turn: flush now (the one case staging costs a syscall).
    enterAndReap(0);
    Head = __atomic_load_n(SqHead, __ATOMIC_ACQUIRE);
    if (SqTailLocal - Head >= SqEntries) {
      // Wedged ring (enter persistently failing). Scribble on a dummy so
      // callers stay crash-free; the op will simply never complete.
      static io_uring_sqe Dummy;
      std::memset(&Dummy, 0, sizeof(Dummy));
      return &Dummy;
    }
  }
  io_uring_sqe *S = &Sqes[SqTailLocal & SqMask];
  std::memset(S, 0, sizeof(*S));
  ++SqTailLocal;
  ++ToSubmit;
  return S;
}

UringKernel::PendingIo *UringKernel::newIo(IoKind Kind, int Fd) {
  auto Io = std::make_unique<PendingIo>();
  Io->Token = NextToken++;
  Io->Kind = Kind;
  Io->Fd = Fd;
  PendingIo *Raw = Io.get();
  Table.emplace(Raw->Token, std::move(Io));
  if (Kind == IoKind::Accept || Kind == IoKind::Recv ||
      Kind == IoKind::Send || Kind == IoKind::Connect)
    ++IoOps;
  return Raw;
}

void UringKernel::finishIo(PendingIo *Io) {
  if (Io->Kind == IoKind::Accept || Io->Kind == IoKind::Recv ||
      Io->Kind == IoKind::Send || Io->Kind == IoKind::Connect) {
    if (IoOps > 0)
      --IoOps;
  }
  Table.erase(Io->Token);
}

void UringKernel::writeAccept(PendingIo &Io, bool Multishot) {
  io_uring_sqe *S = getSqe();
  S->opcode = IORING_OP_ACCEPT;
  S->fd = Io.Fd;
  S->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
  if (Multishot)
    S->ioprio = IORING_ACCEPT_MULTISHOT;
  S->user_data = Io.Token;
}

uint64_t UringKernel::stageAccept(int ListenFd, AcceptFn H) {
  PendingIo *Io = newIo(IoKind::Accept, ListenFd);
  Io->OnAccept = std::move(H);
  writeAccept(*Io, MultishotAcceptOk);
  return Io->Token;
}

void UringKernel::writeRecv(PendingIo &Io) {
  io_uring_sqe *S = getSqe();
  S->opcode = IORING_OP_RECV;
  S->fd = Io.Fd;
  if (UseBufRing) {
    S->flags |= IOSQE_BUFFER_SELECT;
    S->buf_group = 0;
    S->len = BufSize;
  } else {
    if (Io.Buf.size() != BufSize)
      Io.Buf.resize(BufSize);
    S->addr = reinterpret_cast<uint64_t>(Io.Buf.data());
    S->len = BufSize;
  }
  S->user_data = Io.Token;
}

uint64_t UringKernel::stageRecv(int Fd, RecvFn H) {
  PendingIo *Io = newIo(IoKind::Recv, Fd);
  Io->OnRecv = std::move(H);
  writeRecv(*Io);
  return Io->Token;
}

uint64_t UringKernel::stageSend(int Fd, std::string Chunk, size_t Off,
                                SendFn H) {
  PendingIo *Io = newIo(IoKind::Send, Fd);
  Io->OnSend = std::move(H);
  Io->Buf = std::move(Chunk);
  Io->Off = Off;
  io_uring_sqe *S = getSqe();
  S->opcode = IORING_OP_SEND;
  S->fd = Fd;
  S->addr = reinterpret_cast<uint64_t>(Io->Buf.data() + Io->Off);
  S->len = static_cast<unsigned>(Io->Buf.size() - Io->Off);
  S->msg_flags = MSG_NOSIGNAL;
  S->user_data = Io->Token;
  return Io->Token;
}

uint64_t UringKernel::stageConnect(int Fd, const sockaddr_in &Addr,
                                   ConnectFn H) {
  PendingIo *Io = newIo(IoKind::Connect, Fd);
  Io->OnConnect = std::move(H);
  Io->Addr = Addr;
  io_uring_sqe *S = getSqe();
  S->opcode = IORING_OP_CONNECT;
  S->fd = Fd;
  S->addr = reinterpret_cast<uint64_t>(&Io->Addr);
  S->off = sizeof(Io->Addr);
  S->user_data = Io->Token;
  return Io->Token;
}

void UringKernel::cancelIo(uint64_t Token) {
  auto It = Table.find(Token);
  if (It == Table.end())
    return;
  PendingIo *Io = It->second.get();
  if (Io->Cancelled)
    return;
  Io->Cancelled = true;
  // Drop the handlers now: they may pin a socket the owner is tearing
  // down. The entry itself (owning any in-flight buffer) stays until the
  // CQE arrives — that is the cancellation-vs-buffer-ownership contract.
  Io->OnAccept = nullptr;
  Io->OnRecv = nullptr;
  Io->OnSend = nullptr;
  Io->OnConnect = nullptr;
  PendingIo *Cn = newIo(IoKind::Cancel, -1);
  io_uring_sqe *S = getSqe();
  S->opcode = IORING_OP_ASYNC_CANCEL;
  S->addr = Token;
  S->user_data = Cn->Token;
}

void UringKernel::writeEvPoll() {
  PendingIo *Io = newIo(IoKind::EvPoll, EvFd);
  io_uring_sqe *S = getSqe();
  S->opcode = IORING_OP_POLL_ADD;
  S->fd = EvFd;
  S->poll32_events = POLLIN;
  if (MultishotPollOk)
    S->len = IORING_POLL_ADD_MULTI;
  S->user_data = Io->Token;
}

void UringKernel::provideBuffer(unsigned Bid) {
  if (Pool.empty())
    return;
  PendingIo *Io = newIo(IoKind::ProvideBuf, -1);
  io_uring_sqe *S = getSqe();
  S->opcode = IORING_OP_PROVIDE_BUFFERS;
  S->fd = 1; // one buffer
  S->addr = reinterpret_cast<uint64_t>(Pool.data() +
                                       static_cast<size_t>(Bid) * BufSize);
  S->len = BufSize;
  S->off = Bid;
  S->buf_group = 0;
  S->user_data = Io->Token;
}

void UringKernel::armDeadline(SimTime Next) {
  if (DeadlineToken != 0 && DeadlineArmed == Next)
    return;
  if (DeadlineToken != 0) {
    PendingIo *Rm = newIo(IoKind::TimeoutRemove, -1);
    io_uring_sqe *S = getSqe();
    S->opcode = IORING_OP_TIMEOUT_REMOVE;
    S->addr = DeadlineToken;
    S->user_data = Rm->Token;
    DeadlineToken = 0;
    DeadlineArmed = NoDeadline;
  }
  if (Next == NoDeadline)
    return;
  PendingIo *Io = newIo(IoKind::Timeout, -1);
  // Origin + Next is an absolute CLOCK_MONOTONIC point (steady_clock is
  // CLOCK_MONOTONIC on Linux) — the exact math the epoll backend feeds
  // its timerfd, expressed as an IORING_TIMEOUT_ABS SQE.
  auto Abs = Origin + std::chrono::microseconds(Next);
  int64_t Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Abs.time_since_epoch())
                   .count();
  Io->Ts.tv_sec = Ns / 1000000000;
  Io->Ts.tv_nsec = Ns % 1000000000;
  io_uring_sqe *S = getSqe();
  S->opcode = IORING_OP_TIMEOUT;
  S->addr = reinterpret_cast<uint64_t>(&Io->Ts);
  S->len = 1;
  S->timeout_flags = IORING_TIMEOUT_ABS;
  S->user_data = Io->Token;
  DeadlineToken = Io->Token;
  DeadlineArmed = Next;
}

//===----------------------------------------------------------------------===//
// Submission + completion reaping
//===----------------------------------------------------------------------===//

unsigned UringKernel::enterAndReap(unsigned MinComplete) {
  __atomic_store_n(SqTail, SqTailLocal, __ATOMIC_RELEASE);
  unsigned Submitting = ToSubmit;
  unsigned Flags = MinComplete ? IORING_ENTER_GETEVENTS : 0;
  int Ret;
  do {
    ++Stats.Enters;
    ++Stats.Syscalls;
    Ret = sysUringEnter(RingFd, Submitting, MinComplete, Flags);
  } while (Ret < 0 && errno == EINTR);
  if (Submitting && Ret > 0) {
    unsigned Consumed = std::min(static_cast<unsigned>(Ret), ToSubmit);
    Stats.SqesSubmitted += Consumed;
    ++Stats.SubmitBatches;
    if (Consumed > Stats.MaxSqeBatch)
      Stats.MaxSqeBatch = Consumed;
    ToSubmit -= Consumed;
  }
  return reapCqes();
}

unsigned UringKernel::reapCqes() {
  unsigned Head = *CqHead;
  unsigned N = 0;
  for (;;) {
    unsigned Tail = __atomic_load_n(CqTail, __ATOMIC_ACQUIRE);
    if (Head == Tail)
      break;
    while (Head != Tail) {
      // Copy, then publish consumption before handling: handleCqe may
      // re-stage SQEs and even flush the ring (full-ring path), and the
      // kernel needs the CQ slot back to post more completions.
      io_uring_cqe Cqe = Cqes[Head & CqMask];
      ++Head;
      __atomic_store_n(CqHead, Head, __ATOMIC_RELEASE);
      ++N;
      handleCqe(Cqe);
    }
  }
  Stats.Completions += N;
  return N;
}

void UringKernel::handleCqe(const io_uring_cqe &Cqe) {
  auto It = Table.find(Cqe.user_data);
  if (It == Table.end())
    return; // stale (e.g. a timeout whose entry a remove already freed)
  PendingIo *Io = It->second.get();
  int Res = Cqe.res;
  unsigned Flags = Cqe.flags;

  switch (Io->Kind) {
  case IoKind::Accept: {
    bool More = (Flags & IORING_CQE_F_MORE) != 0;
    if (Io->Cancelled) {
      if (!More)
        finishIo(Io);
      return;
    }
    if (Res == -EINVAL && MultishotAcceptOk) {
      // Kernel predates multishot accept: fall back to oneshot re-arms.
      MultishotAcceptOk = false;
      writeAccept(*Io, false);
      return;
    }
    if (Res == -ECANCELED) {
      finishIo(Io);
      return;
    }
    if (Res >= 0) {
      AcceptFn H = Io->OnAccept; // copy — the entry persists across shots
      int NewFd = Res;
      Completions.push_back([H = std::move(H), NewFd] { H(NewFd); });
    }
    // Transient errors (ECONNABORTED, EMFILE, ...) just re-arm, mirroring
    // epoll's accept4-loop skipping them.
    if (!More)
      writeAccept(*Io, MultishotAcceptOk);
    return;
  }

  case IoKind::Recv: {
    if (Io->Cancelled) {
      if (Flags & IORING_CQE_F_BUFFER)
        provideBuffer(Flags >> IORING_CQE_BUFFER_SHIFT);
      finishIo(Io);
      return;
    }
    if (Res == -ENOBUFS) {
      // Pool momentarily exhausted (all buffers awaiting re-provide).
      // Re-stage; the re-provides are already in the same batch.
      writeRecv(*Io);
      return;
    }
    if (Flags & IORING_CQE_F_BUFFER) {
      unsigned Bid = Flags >> IORING_CQE_BUFFER_SHIFT;
      const char *Data = Pool.data() + static_cast<size_t>(Bid) * BufSize;
      Completions.push_back(
          [this, H = std::move(Io->OnRecv), Res, Data, Bid] {
            H(Res, Res > 0 ? Data : nullptr);
            // The buffer is consumed exactly when the handler returns;
            // hand it back to the kernel's pool (staged, batched).
            provideBuffer(Bid);
          });
    } else {
      Completions.push_back(
          [H = std::move(Io->OnRecv), Buf = std::move(Io->Buf), Res] {
            H(Res, Res > 0 ? Buf.data() : nullptr);
          });
    }
    finishIo(Io);
    return;
  }

  case IoKind::Send: {
    if (Io->Cancelled) {
      finishIo(Io);
      return;
    }
    Completions.push_back(
        [H = std::move(Io->OnSend), Chunk = std::move(Io->Buf),
         Res]() mutable { H(Res, std::move(Chunk)); });
    finishIo(Io);
    return;
  }

  case IoKind::Connect: {
    if (!Io->Cancelled)
      Completions.push_back([H = std::move(Io->OnConnect), Res] { H(Res); });
    finishIo(Io);
    return;
  }

  case IoKind::EvPoll: {
    // Drain the eventfd counter; externally submitted work is drained by
    // takeDue itself — the poll's only job is ending a blocked enter.
    uint64_t V;
    ++Stats.Syscalls;
    // Drain through EINTR: a signal mid-drain would otherwise leave the
    // counter nonzero and re-fire the poll immediately.
    ssize_t R;
    while ((R = ::read(EvFd, &V, sizeof(V))) > 0 ||
           (R < 0 && errno == EINTR)) {
    }
    if (Res == -EINVAL && MultishotPollOk) {
      MultishotPollOk = false;
      finishIo(Io);
      writeEvPoll();
      return;
    }
    if (!(Flags & IORING_CQE_F_MORE)) {
      finishIo(Io);
      if (!ShuttingDown)
        writeEvPoll();
    }
    return;
  }

  case IoKind::Timeout: {
    if (Io->Token == DeadlineToken) {
      DeadlineToken = 0;
      DeadlineArmed = NoDeadline;
    }
    finishIo(Io);
    return;
  }

  case IoKind::ProvideBuf:
    if (Res < 0)
      UseBufRing = false; // future recvs fall back to owned buffers
    finishIo(Io);
    return;

  case IoKind::TimeoutRemove:
  case IoKind::Cancel:
    finishIo(Io);
    return;
  }
}

//===----------------------------------------------------------------------===//
// Kernel surface
//===----------------------------------------------------------------------===//

bool UringKernel::hasStagedWork() const {
  return !Completions.empty() || hasExternalWork();
}

bool UringKernel::hasPending() const {
  return Kernel::hasPending() || IoOps > 0 || hasStagedWork();
}

size_t UringKernel::pendingCount() const {
  return Kernel::pendingCount() + IoOps + Completions.size();
}

SimTime UringKernel::nextDeadline() const {
  // Reaped completions/external work are due immediately; in-flight ops
  // alone have no deadline (the loop blocks on them in waitUntil).
  if (hasStagedWork())
    return now();
  return Kernel::nextDeadline();
}

void UringKernel::sweep() {
  if (reapCqes() > 0)
    ++Stats.ZeroSyscallReaps; // served straight from the mmap'd CQ ring
  if (ToSubmit > 0)
    enterAndReap(0);
}

std::vector<std::function<void()>> UringKernel::takeDue() {
  syncClock();
  // One flush per loop turn: everything staged by last turn's callbacks
  // goes down in a single enter (plus a free CQ reap first).
  sweep();

  std::vector<std::function<void()>> Due = Kernel::takeDue();
  drainExternalInto(Due);
  for (auto &C : Completions)
    Due.push_back(std::move(C));
  Completions.clear();
  return Due;
}

bool UringKernel::waitUntil(SimTime Next) {
  syncClock();
  bool Stopping = stopRequested();
  if (Stopping) {
    // Graceful drain, mirroring epoll: collect completions that already
    // arrived so the run finishes in-flight work before exiting.
    sweep();
  }
  if (hasStagedWork())
    return true;
  if (Next != NoDeadline && Next <= now())
    return true;
  if (Next == NoDeadline && (IoOps == 0 || Stopping)) {
    if (externalQueueEmpty())
      return false;
    return true;
  }
  // Free reap BEFORE arming the deadline, not after. The armed TIMEOUT may
  // have already fired with its ETIME CQE sitting unreaped in the ring; a
  // reap that runs after armDeadline's already-armed-for-Next early return
  // would consume that ETIME, clear the arm, and then block below with no
  // timeout guarding Next — a lost wakeup that strands every deadline task
  // sharing Next's (microsecond-quantized) due time. Reaping first means
  // armDeadline sees the cleared state and stages a fresh TIMEOUT; if the
  // ETIME instead lands after this reap, it satisfies the blocking enter's
  // min_complete and the wait returns immediately. Both interleavings are
  // then safe.
  reapCqes();
  armDeadline(Next);
  if (Completions.empty())
    enterAndReap(1); // flush staged SQEs + sleep in one syscall
  else if (ToSubmit > 0)
    enterAndReap(0);
  syncClock();
  return true;
}

#endif // __linux__
