//===- EpollKernel.cpp - Real-traffic epoll kernel backend --------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#ifdef __linux__

#include "sim/EpollKernel.h"

#include <sys/epoll.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

using namespace asyncg;
using namespace asyncg::sim;

EpollKernel::EpollKernel(Clock &C) : RealKernel(C) {
  EpFd = epoll_create1(EPOLL_CLOEXEC);
  TimerFd = timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  Stats.Syscalls += 2;
  if (!valid())
    return;
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = EvFd;
  epoll_ctl(EpFd, EPOLL_CTL_ADD, EvFd, &Ev);
  Ev.data.fd = TimerFd;
  epoll_ctl(EpFd, EPOLL_CTL_ADD, TimerFd, &Ev);
  Stats.Syscalls += 2;
}

EpollKernel::~EpollKernel() {
  if (TimerFd >= 0)
    ::close(TimerFd);
  if (EpFd >= 0)
    ::close(EpFd);
}

bool EpollKernel::hasStagedWork() const {
  return !Ready.empty() || hasExternalWork();
}

bool EpollKernel::hasPending() const {
  return Kernel::hasPending() || !Watches.empty() || hasStagedWork();
}

size_t EpollKernel::pendingCount() const {
  return Kernel::pendingCount() + Watches.size() + Ready.size();
}

SimTime EpollKernel::nextDeadline() const {
  // Staged readiness/external work is due immediately; watched fds alone
  // have no deadline (the loop blocks on them in waitUntil).
  if (hasStagedWork())
    return now();
  return Kernel::nextDeadline();
}

bool EpollKernel::watchFd(int Fd, uint32_t Events, FdHandler H) {
  if (Watches.count(Fd))
    return false;
  auto W = std::make_shared<Watch>();
  W->Fd = Fd;
  W->Events = Events;
  W->Handler = std::move(H);
  epoll_event Ev{};
  Ev.events = Events;
  Ev.data.fd = Fd;
  ++Stats.Syscalls; // epoll_ctl ADD
  if (epoll_ctl(EpFd, EPOLL_CTL_ADD, Fd, &Ev) != 0)
    return false;
  Watches.emplace(Fd, std::move(W));
  return true;
}

bool EpollKernel::modifyFd(int Fd, uint32_t Events) {
  auto It = Watches.find(Fd);
  if (It == Watches.end())
    return false;
  if (It->second->Events == Events)
    return true;
  epoll_event Ev{};
  Ev.events = Events;
  Ev.data.fd = Fd;
  ++Stats.Syscalls; // epoll_ctl MOD
  if (epoll_ctl(EpFd, EPOLL_CTL_MOD, Fd, &Ev) != 0)
    return false;
  It->second->Events = Events;
  return true;
}

void EpollKernel::unwatchFd(int Fd) {
  auto It = Watches.find(Fd);
  if (It == Watches.end())
    return;
  epoll_ctl(EpFd, EPOLL_CTL_DEL, Fd, nullptr);
  ++Stats.Syscalls; // epoll_ctl DEL
  // Expire the watch so queued Ready entries (weak) drop out; the fd
  // number may be reused by a new connection before they are drained.
  Watches.erase(It);
}

int EpollKernel::pollOnce(int TimeoutMs) {
  epoll_event Evs[64];
  int N;
  do {
    ++Stats.Enters;
    ++Stats.Syscalls; // epoll_wait
    N = epoll_wait(EpFd, Evs, 64, TimeoutMs);
  } while (N < 0 && errno == EINTR);
  if (N <= 0)
    return 0;
  int FdEvents = 0;
  for (int I = 0; I != N; ++I) {
    int Fd = Evs[I].data.fd;
    if (Fd == EvFd || Fd == TimerFd) {
      uint64_t Buf;
      ++Stats.Syscalls; // at least one draining read
      // Drain through EINTR: abandoning the drain on a signal would leave
      // the eventfd/timerfd level-readable and spin the next sweep.
      ssize_t R;
      while ((R = ::read(Fd, &Buf, sizeof(Buf))) > 0 ||
             (R < 0 && errno == EINTR)) {
      }
      continue;
    }
    auto It = Watches.find(Fd);
    if (It == Watches.end())
      continue;
    ++FdEvents;
    ++Stats.Completions;
    uint32_t NewMask = Evs[I].events;
    // Merge with an already-queued entry for the same watch (level
    // triggered: the same readiness may be reported by consecutive
    // sweeps before the loop drains it).
    bool Merged = false;
    for (auto &[WeakW, Mask] : Ready) {
      if (WeakW.lock() == It->second) {
        Mask |= NewMask;
        Merged = true;
        break;
      }
    }
    if (!Merged)
      Ready.emplace_back(It->second, NewMask);
  }
  return FdEvents;
}

std::vector<std::function<void()>> EpollKernel::takeDue() {
  syncClock();
  // Sweep without blocking so readiness that arrived since the last wait
  // is served in this I/O phase, not the next loop iteration.
  pollOnce(0);

  std::vector<std::function<void()>> Due = Kernel::takeDue();
  drainExternalInto(Due);

  for (auto &[WeakW, Mask] : Ready) {
    std::weak_ptr<Watch> W = WeakW;
    uint32_t Events = Mask;
    // Resolve at run time: an earlier action in this batch may have
    // destroyed the socket and unwatched the fd.
    Due.push_back([W, Events] {
      if (auto Locked = W.lock())
        if (Locked->Handler)
          Locked->Handler(Events);
    });
  }
  Ready.clear();
  return Due;
}

void EpollKernel::armTimer(SimTime Next) {
  itimerspec Spec{};
  if (Next != NoDeadline) {
    auto Abs = Origin + std::chrono::microseconds(Next);
    auto AbsNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     Abs.time_since_epoch())
                     .count();
    Spec.it_value.tv_sec = AbsNs / 1000000000;
    Spec.it_value.tv_nsec = AbsNs % 1000000000;
    if (Spec.it_value.tv_sec == 0 && Spec.it_value.tv_nsec == 0)
      Spec.it_value.tv_nsec = 1; // 0 disarms; the deadline is "now".
  }
  timerfd_settime(TimerFd, TFD_TIMER_ABSTIME, &Spec, nullptr);
  ++Stats.Syscalls; // timerfd_settime
}

bool EpollKernel::waitUntil(SimTime Next) {
  syncClock();
  bool Stopping = stopRequested();
  if (Stopping) {
    // Graceful drain: collect readiness that already arrived (in-flight
    // FINs, final responses) so the run finishes the same work the
    // simulated kernel's natural drain would.
    pollOnce(0);
  }
  if (hasStagedWork())
    return true;
  if (Next != NoDeadline && Next <= now())
    return true;
  if (Next == NoDeadline && (Watches.empty() || Stopping)) {
    // No deadline and no I/O source that still counts: watched fds keep a
    // loop alive only until a stop is requested (a bare listener would
    // otherwise block forever). Only an external submit could produce
    // work now, and those are posted by threads that also stop the loop —
    // treat as drained.
    if (externalQueueEmpty())
      return false;
    return true;
  }
  // Origin + Next is an absolute CLOCK_MONOTONIC point; steady_clock is
  // CLOCK_MONOTONIC on Linux, so timerfd gives microsecond-accurate
  // deadlines where epoll_wait's ms timeout would round.
  armTimer(Next);
  pollOnce(-1);
  armTimer(NoDeadline);
  syncClock();
  return true;
}

#endif // __linux__
