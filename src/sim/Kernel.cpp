//===- Kernel.cpp - Simulated OS async-completion kernel -------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/Kernel.h"

#include <cassert>

using namespace asyncg;
using namespace asyncg::sim;

bool asyncg::sim::kernelBackendSupported(KernelBackend B) {
  switch (B) {
  case KernelBackend::Sim:
    return true;
  case KernelBackend::Epoll:
#ifdef __linux__
    return true;
#else
    return false;
#endif
  }
  return false;
}

const char *asyncg::sim::kernelBackendName(KernelBackend B) {
  switch (B) {
  case KernelBackend::Sim:
    return "sim";
  case KernelBackend::Epoll:
    return "epoll";
  }
  return "?";
}

bool asyncg::sim::parseKernelBackend(const std::string &Name,
                                     KernelBackend &Out) {
  if (Name == "sim") {
    Out = KernelBackend::Sim;
    return true;
  }
  if (Name == "epoll") {
    Out = KernelBackend::Epoll;
    return true;
  }
  return false;
}

Kernel::~Kernel() = default;

OpId Kernel::submit(SimTime Delay, std::function<void()> Action) {
  OpId Id = NextId++;
  SimTime Deadline = TheClock.now() + Delay;
  auto Key = std::make_pair(Deadline, Id);
  Pending.emplace(Key, PendingOp{Id, std::move(Action)});
  ById.emplace(Id, Key);
  return Id;
}

bool Kernel::cancel(OpId Id) {
  auto It = ById.find(Id);
  if (It == ById.end())
    return false;
  Pending.erase(It->second);
  ById.erase(It);
  return true;
}

SimTime Kernel::nextDeadline() const {
  if (Pending.empty())
    return NoDeadline;
  return Pending.begin()->first.first;
}

std::vector<std::function<void()>> Kernel::takeDue() {
  std::vector<std::function<void()>> Due;
  SimTime Now = TheClock.now();
  while (!Pending.empty() && Pending.begin()->first.first <= Now) {
    auto It = Pending.begin();
    ById.erase(It->second.Id);
    Due.push_back(std::move(It->second.Action));
    Pending.erase(It);
  }
  return Due;
}

bool Kernel::waitUntil(SimTime Next) {
  if (Next == NoDeadline)
    return false;
  // Virtual time: "blocking in poll with a timeout" is one clock jump.
  TheClock.advanceTo(Next);
  return true;
}
