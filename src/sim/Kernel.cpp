//===- Kernel.cpp - Simulated OS async-completion kernel -------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/Kernel.h"

#include <cassert>

using namespace asyncg;
using namespace asyncg::sim;

OpId Kernel::submit(SimTime Delay, std::function<void()> Action) {
  OpId Id = NextId++;
  SimTime Deadline = TheClock.now() + Delay;
  auto Key = std::make_pair(Deadline, Id);
  Pending.emplace(Key, PendingOp{Id, std::move(Action)});
  ById.emplace(Id, Key);
  return Id;
}

bool Kernel::cancel(OpId Id) {
  auto It = ById.find(Id);
  if (It == ById.end())
    return false;
  Pending.erase(It->second);
  ById.erase(It);
  return true;
}

SimTime Kernel::nextDeadline() const {
  if (Pending.empty())
    return NoDeadline;
  return Pending.begin()->first.first;
}

std::vector<std::function<void()>> Kernel::takeDue() {
  std::vector<std::function<void()>> Due;
  SimTime Now = TheClock.now();
  while (!Pending.empty() && Pending.begin()->first.first <= Now) {
    auto It = Pending.begin();
    ById.erase(It->second.Id);
    Due.push_back(std::move(It->second.Action));
    Pending.erase(It);
  }
  return Due;
}
