//===- Kernel.cpp - Simulated OS async-completion kernel -------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/Kernel.h"

#ifdef __linux__
#include "sim/UringKernel.h"
#endif

#include <cassert>

using namespace asyncg;
using namespace asyncg::sim;

bool asyncg::sim::kernelBackendSupported(KernelBackend B) {
  switch (B) {
  case KernelBackend::Sim:
    return true;
  case KernelBackend::Epoll:
  case KernelBackend::Uring:
#ifdef __linux__
    return true;
#else
    return false;
#endif
  }
  return false;
}

bool asyncg::sim::kernelBackendAvailable(KernelBackend B,
                                         std::string *Reason) {
  switch (B) {
  case KernelBackend::Sim:
    if (Reason)
      *Reason = "sim: always available (deterministic virtual time)";
    return true;
  case KernelBackend::Epoll:
#ifdef __linux__
    if (Reason)
      *Reason = "epoll: available (Linux build)";
    return true;
#else
    if (Reason)
      *Reason = "epoll: unavailable (the epoll reactor needs a Linux build)";
    return false;
#endif
  case KernelBackend::Uring: {
#ifdef __linux__
    UringCaps Caps = probeUringCaps();
    if (Reason)
      *Reason = Caps.Reason;
    return Caps.Available;
#else
    if (Reason)
      *Reason = "uring: unavailable (io_uring needs a Linux build)";
    return false;
#endif
  }
  }
  return false;
}

KernelBackend asyncg::sim::resolveAutoKernelBackend(std::string *Reason) {
  std::string Why;
  if (kernelBackendAvailable(KernelBackend::Uring, &Why)) {
    if (Reason)
      *Reason = "selected uring — " + Why;
    return KernelBackend::Uring;
  }
  std::string Rejected = Why;
  if (kernelBackendAvailable(KernelBackend::Epoll, &Why)) {
    if (Reason)
      *Reason = "selected epoll (fallback: " + Rejected + ")";
    return KernelBackend::Epoll;
  }
  if (Reason)
    *Reason = "selected sim (fallback: " + Rejected + "; " + Why + ")";
  return KernelBackend::Sim;
}

std::string asyncg::sim::availableKernelBackendNames() {
  std::string Out;
  for (KernelBackend B :
       {KernelBackend::Sim, KernelBackend::Epoll, KernelBackend::Uring})
    if (kernelBackendAvailable(B)) {
      if (!Out.empty())
        Out += ", ";
      Out += kernelBackendName(B);
    }
  return Out;
}

const char *asyncg::sim::kernelBackendName(KernelBackend B) {
  switch (B) {
  case KernelBackend::Sim:
    return "sim";
  case KernelBackend::Epoll:
    return "epoll";
  case KernelBackend::Uring:
    return "uring";
  }
  return "?";
}

bool asyncg::sim::parseKernelBackend(const std::string &Name,
                                     KernelBackend &Out) {
  if (Name == "sim") {
    Out = KernelBackend::Sim;
    return true;
  }
  if (Name == "epoll") {
    Out = KernelBackend::Epoll;
    return true;
  }
  if (Name == "uring") {
    Out = KernelBackend::Uring;
    return true;
  }
  return false;
}

Kernel::~Kernel() = default;

OpId Kernel::submit(SimTime Delay, std::function<void()> Action) {
  OpId Id = NextId++;
  SimTime Deadline = TheClock.now() + Delay;
  auto Key = std::make_pair(Deadline, Id);
  Pending.emplace(Key, PendingOp{Id, std::move(Action)});
  ById.emplace(Id, Key);
  return Id;
}

bool Kernel::cancel(OpId Id) {
  auto It = ById.find(Id);
  if (It == ById.end())
    return false;
  Pending.erase(It->second);
  ById.erase(It);
  return true;
}

SimTime Kernel::nextDeadline() const {
  if (Pending.empty())
    return NoDeadline;
  return Pending.begin()->first.first;
}

std::vector<std::function<void()>> Kernel::takeDue() {
  std::vector<std::function<void()>> Due;
  SimTime Now = TheClock.now();
  while (!Pending.empty() && Pending.begin()->first.first <= Now) {
    auto It = Pending.begin();
    ById.erase(It->second.Id);
    Due.push_back(std::move(It->second.Action));
    Pending.erase(It);
  }
  return Due;
}

bool Kernel::waitUntil(SimTime Next) {
  if (Next == NoDeadline)
    return false;
  // Virtual time: "blocking in poll with a timeout" is one clock jump.
  TheClock.advanceTo(Next);
  return true;
}
